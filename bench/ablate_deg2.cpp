// Ablation A4 — the degree-2 chain elimination preprocessing from §2.
// For families rich in degree-2 vertices (geometric AD3, chains,
// caterpillar-like geographic graphs) we compare solving the original graph
// directly against reduce -> solve -> expand, reporting the reduction ratio
// and end-to-end wall times. Expectation: big wins exactly where the paper
// proposes it (chain-heavy instances); no-ops elsewhere (torus has no
// degree-2 vertices).
//
// Usage: ablate_deg2 [--n=65536] [--p=4] [--reps=2] [--seed=...] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "graph/transform.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 4));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== A4: degree-2 elimination preprocessing, p=" << p << " ==\n";

  bench::Table table({"family", "n", "reduced_n", "eliminated_pct",
                      "direct_wall", "pipeline_wall", "reduce_wall"});
  ThreadPool pool(p);

  for (const char* family :
       {"ad3", "chain-seq", "geo-flat", "geo-hier", "torus-rowmajor"}) {
    const Graph g = gen::make_family(family, n, seed);

    BaderCongOptions opts;
    opts.seed = seed;
    SpanningForest forest;
    const auto direct = bench::time_repeated(
        [&] { forest = bader_cong_spanning_tree(g, pool, opts); }, reps);
    SMPST_CHECK(validate_spanning_forest(g, forest).ok, "direct invalid");

    // Reduce once (reusable across solves), then time reduce and the full
    // reduce+solve+expand pipeline separately.
    const auto reduce_time =
        bench::time_repeated([&] { (void)eliminate_degree2(g); }, reps);
    const auto red = eliminate_degree2(g);
    SpanningForest full;
    const auto pipeline = bench::time_repeated(
        [&] {
          const auto rf = bader_cong_spanning_tree(red.reduced, pool, opts);
          full.parent = expand_parent_forest(g, red, rf.parent);
        },
        reps);
    SMPST_CHECK(validate_spanning_forest(g, full).ok, "pipeline invalid");

    const double pct = 100.0 * static_cast<double>(red.eliminated_vertices()) /
                       static_cast<double>(g.num_vertices());
    table.add_row({family, std::to_string(g.num_vertices()),
                   std::to_string(red.reduced.num_vertices()),
                   bench::fmt_double(pct, 1), bench::fmt_seconds(direct.min_s),
                   bench::fmt_seconds(pipeline.min_s),
                   bench::fmt_seconds(reduce_time.min_s)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ablate_deg2: " << e.what() << "\n";
  return 1;
}
