// Ablation A2 — steal granularity. The paper's thief "steals part of the
// queue"; we sweep the chunk policy from steal-1 (Chase-Lev-style) through
// fixed sizes to steal-half (the default), reporting virtual-SMP makespan,
// steal traffic, and load balance per family. Expectation: steal-half needs
// far fewer steals for the same balance; steal-1 multiplies steal overhead
// on bushy graphs and is the only viable option on chains anyway.
//
// Usage: ablate_steal [--n=65536] [--p=8] [--seed=...] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "gen/registry.hpp"
#include "model/cost_model.hpp"
#include "model/virtual_smp.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  const auto machine = model::sun_e4500();
  std::cout << "== A2: steal chunk ablation, p=" << p
            << " (virtual SMP; chunk 0 = steal half) ==\n";

  bench::Table table({"family", "chunk", "makespan", "imbalance", "steals",
                      "items_stolen", "e4500_time"});
  for (const char* family :
       {"random-nlogn", "torus-rowmajor", "geo-hier", "chain-seq"}) {
    const Graph g = gen::make_family(family, n, seed);
    for (const std::size_t chunk :
         {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{64},
          std::size_t{1024}}) {
      model::VirtualRunOptions opts;
      opts.processors = p;
      opts.steal_chunk = chunk;
      opts.seed = seed;
      const auto run = model::virtual_traversal(g, opts);
      std::uint64_t steals = 0;
      std::uint64_t stolen = 0;
      for (const auto& t : run.per_thread) {
        steals += t.steals_succeeded;
        stolen += t.items_stolen;
      }
      table.add_row({family, chunk == 0 ? "half" : std::to_string(chunk),
                     bench::fmt_double(run.makespan, 0),
                     bench::fmt_double(run.load_imbalance()),
                     bench::fmt_count(steals), bench::fmt_count(stolen),
                     bench::fmt_seconds(run.seconds_on(machine))});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ablate_steal: " << e.what() << "\n";
  return 1;
}
