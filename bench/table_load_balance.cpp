// Experiment E14 — the paper's load-balancing claim: "the expected number of
// vertices processed per processor is O(n/p) with the work-stealing
// technique; we find that this technique keeps all processors equally busy".
//
// The deterministic virtual-SMP replay reports, for each family at p
// processors: per-processor min/max vertices, the imbalance factor
// (max/mean; 1.0 = perfect), steal traffic, and the chain's expected
// counter-example behaviour.
//
// Usage: table_load_balance [--n=65536] [--p=8] [--seed=...] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "gen/registry.hpp"
#include "model/virtual_smp.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== E14: work-stealing load balance (virtual SMP, p=" << p
            << ") ==\n"
            << "paper: ~n/p vertices per processor on almost all graphs; the "
               "high-diameter chain is the stated pathological case\n";

  bench::Table table({"family", "verts_min", "verts_max", "imbalance",
                      "steals_ok", "items_stolen", "probe_fails"});

  for (const char* family :
       {"torus-rowmajor", "random-nlogn", "random-1.5n", "2d60", "3d40", "ad3",
        "geo-flat", "geo-hier", "rmat", "chain-seq"}) {
    const Graph g = gen::make_family(family, n, seed);
    model::VirtualRunOptions opts;
    opts.processors = p;
    opts.seed = seed;
    const auto run = model::virtual_traversal(g, opts);

    std::uint64_t vmin = ~0ULL;
    std::uint64_t vmax = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolen = 0;
    std::uint64_t attempts = 0;
    for (const auto& t : run.per_thread) {
      vmin = std::min(vmin, t.vertices_processed);
      vmax = std::max(vmax, t.vertices_processed);
      steals += t.steals_succeeded;
      stolen += t.items_stolen;
      attempts += t.steal_attempts;
    }
    table.add_row({family, bench::fmt_count(vmin), bench::fmt_count(vmax),
                   bench::fmt_double(run.load_imbalance()),
                   bench::fmt_count(steals), bench::fmt_count(stolen),
                   bench::fmt_count(attempts - steals)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "table_load_balance: " << e.what() << "\n";
  return 1;
}
