// Experiments E12 + A3 — Shiloach-Vishkin's labelling sensitivity and the
// lock-vs-election grafting ablation.
//
// The paper: "SV is sensitive to the labeling of vertices ... the number of
// iterations needed will be from one to log n", and "the locking approach
// intuitively is slow and not scalable, and our test results agree".
//
// For torus and chain instances under identity / random / reverse / BFS
// labelings we report SV's iteration count, shortcut passes, and wall time
// for both grafting schemes, plus the Bader-Cong traversal time on the same
// relabelled graph to show its labelling insensitivity.
//
// Usage: table_sv_labeling [--n=16384] [--p=4] [--reps=2] [--seed=...] [--csv]
#include <cmath>
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/shiloach_vishkin.hpp"
#include "core/validate.hpp"
#include "gen/simple.hpp"
#include "gen/torus.hpp"
#include "graph/relabel.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 14));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 4));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== E12/A3: SV labelling sensitivity and grafting scheme, p="
            << p << " ==\n"
            << "paper: iterations range 1..log n with labelling; locking is "
               "slower than election\n";

  bench::Table table({"graph", "labeling", "sv_iters", "sv_passes",
                      "sv_elect_wall", "sv_lock_wall", "bc_wall"});
  ThreadPool pool(p);

  struct Labeling {
    const char* name;
    Permutation (*make)(const Graph&, std::uint64_t);
  };
  const Labeling labelings[] = {
      {"identity",
       [](const Graph& g, std::uint64_t) {
         return identity_permutation(g.num_vertices());
       }},
      {"random",
       [](const Graph& g, std::uint64_t s) {
         return random_permutation(g.num_vertices(), s);
       }},
      {"reverse",
       [](const Graph& g, std::uint64_t) {
         return reverse_permutation(g.num_vertices());
       }},
      {"bfs-order",
       [](const Graph& g, std::uint64_t) { return bfs_permutation(g, 0); }},
  };

  struct Instance {
    const char* name;
    Graph graph;
  };
  const VertexId side = static_cast<VertexId>(
      std::max(2.0, std::floor(std::sqrt(static_cast<double>(n)))));
  Instance instances[] = {
      {"torus", gen::torus2d(side, side)},
      {"chain", gen::chain(n)},
  };

  for (const auto& inst : instances) {
    for (const auto& lab : labelings) {
      const Graph g =
          apply_permutation(inst.graph, lab.make(inst.graph, seed));

      SvStats stats;
      SvOptions sv;
      sv.stats = &stats;
      SpanningForest forest;
      const auto elect = bench::time_repeated(
          [&] { forest = sv_spanning_tree(g, pool, sv); }, reps);
      SMPST_CHECK(validate_spanning_forest(g, forest).ok, "sv invalid");

      SvOptions svl;
      svl.use_locks = true;
      const auto lock = bench::time_repeated(
          [&] { forest = sv_spanning_tree(g, pool, svl); }, reps);
      SMPST_CHECK(validate_spanning_forest(g, forest).ok, "sv-lock invalid");

      BaderCongOptions bc;
      bc.seed = seed;
      const auto bct = bench::time_repeated(
          [&] { forest = bader_cong_spanning_tree(g, pool, bc); }, reps);
      SMPST_CHECK(validate_spanning_forest(g, forest).ok, "bc invalid");

      table.add_row({inst.name, lab.name, bench::fmt_count(stats.iterations),
                     bench::fmt_count(stats.shortcut_passes),
                     bench::fmt_seconds(elect.min_s),
                     bench::fmt_seconds(lock.min_s),
                     bench::fmt_seconds(bct.min_s)});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "table_sv_labeling: " << e.what() << "\n";
  return 1;
}
