// Closed-loop load driver for the query service (serving-path extension).
//
// For each client count c in --clients, spins up a QueryExecutor with c
// worker slots over one shared registry graph, then drives c closed-loop
// clients (each submits a validated query, waits for the result, repeats).
// Reports throughput and the service-side p50/p95/p99 latency distribution
// per client count. Afterwards runs two correctness demonstrations that the
// acceptance criteria pin down:
//   1. a batch of concurrent queries over the shared graph must all complete
//      and validate (core/validate is the oracle);
//   2. a 0 ms deadline must deterministically yield a timed-out result.
// Exit status is nonzero if either demonstration fails.
//
//   ext_service_load --family=random-nlogn --n=32768 --algo=bader-cong
//       --clients=1,2,4 --requests=32 --threads-per-query=2
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/cli.hpp"
#include "service/executor.hpp"
#include "support/timer.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

struct LoadResult {
  std::uint64_t ok = 0;
  std::uint64_t bad = 0;
  double wall_s = 0.0;
  LatencyHistogram::Snapshot latency;
};

LoadResult drive(GraphRegistry& registry, const std::string& graph,
                 const std::string& algo, std::size_t clients,
                 std::size_t threads_per_query, std::size_t requests) {
  ExecutorOptions opts;
  opts.num_workers = clients;
  opts.threads_per_query = threads_per_query;
  opts.queue_capacity = 2 * clients * requests;  // closed loop: never full
  QueryExecutor executor(registry, opts);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> bad{0};
  WallTimer wall;
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      for (std::size_t i = 0; i < requests; ++i) {
        SpanningTreeRequest req;
        req.graph = graph;
        req.algorithm = algo;
        req.seed = 0x5eed + c * 1000 + i;
        req.validate = true;
        const QueryResult r = executor.submit(std::move(req)).get();
        if (r.ok() && r.validation.ok) {
          ok.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  LoadResult result;
  result.wall_s = wall.elapsed_seconds();
  result.ok = ok.load();
  result.bad = bad.load();
  result.latency = executor.stats().latency;
  return result;
}

bool demo_concurrent_batch(GraphRegistry& registry, const std::string& graph,
                           const std::string& algo,
                           std::size_t threads_per_query) {
  ExecutorOptions opts;
  opts.num_workers = 2;  // two slots -> genuinely concurrent execution
  opts.threads_per_query = threads_per_query;
  QueryExecutor executor(registry, opts);

  std::vector<SpanningTreeRequest> batch(4);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].graph = graph;
    batch[i].algorithm = algo;
    batch[i].seed = 7 + i;
    batch[i].validate = true;
  }
  auto futures = executor.submit_batch(std::move(batch));
  bool all_ok = futures.size() == 4;
  for (auto& fut : futures) {
    const QueryResult r = fut.get();
    if (!r.ok() || !r.validation.ok) {
      std::printf("  FAIL: batch query status=%s error=%s\n",
                  to_string(r.status), r.error.c_str());
      all_ok = false;
    }
  }
  std::printf("concurrent batch over shared graph: %s\n",
              all_ok ? "all 4 queries completed and validated" : "FAILED");
  return all_ok;
}

bool demo_zero_deadline(GraphRegistry& registry, const std::string& graph,
                        const std::string& algo) {
  ExecutorOptions opts;
  opts.num_workers = 1;
  opts.threads_per_query = 1;
  QueryExecutor executor(registry, opts);
  bool all_timed_out = true;
  for (int i = 0; i < 5; ++i) {
    SpanningTreeRequest req;
    req.graph = graph;
    req.algorithm = algo;
    req.timeout_ms = 0;
    const QueryResult r = executor.submit(std::move(req)).get();
    if (r.status != QueryStatus::kTimedOut) {
      std::printf("  FAIL: 0 ms deadline returned %s\n", to_string(r.status));
      all_timed_out = false;
    }
  }
  std::printf("0 ms deadline: %s\n",
              all_timed_out ? "deterministically timed out (5/5)" : "FAILED");
  return all_timed_out;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto family = cli.get_string("family", "random-nlogn");
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 15));
  const auto algo = cli.get_string("algo", "bader-cong");
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 32));
  const auto threads_per_query =
      static_cast<std::size_t>(cli.get_int("threads-per-query", 2));
  const auto clients = cli.get_int_list("clients", {1, 2, 4});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  cli.reject_unknown();

  GraphRegistry registry;
  const auto graph = registry.generate("main", family, n, seed);
  std::printf("graph 'main': %s n=%u m=%llu (%.1f MiB), algo=%s, %zu req/client\n\n",
              family.c_str(), graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()),
              static_cast<double>(graph->memory_bytes()) / (1 << 20),
              algo.c_str(), requests);

  std::printf("%8s %8s %6s %10s %10s %10s %10s %10s\n", "clients", "served",
              "bad", "qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms");
  for (const auto c : clients) {
    const LoadResult r =
        drive(registry, "main", algo, static_cast<std::size_t>(c),
              threads_per_query, requests);
    std::printf("%8lld %8llu %6llu %10.1f %10.3f %10.3f %10.3f %10.3f\n",
                static_cast<long long>(c),
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.bad),
                static_cast<double>(r.ok + r.bad) / r.wall_s,
                r.latency.mean_ms, r.latency.percentile(50),
                r.latency.percentile(95), r.latency.percentile(99));
    if (r.bad != 0) {
      std::printf("FAIL: %llu queries did not complete correctly\n",
                  static_cast<unsigned long long>(r.bad));
      return 1;
    }
  }
  std::printf("\n");

  const bool batch_ok =
      demo_concurrent_batch(registry, "main", algo, threads_per_query);
  const bool deadline_ok = demo_zero_deadline(registry, "main", algo);

  const auto reg = registry.stats();
  std::printf("registry: %llu hits / %llu misses (hit rate %.3f)\n",
              static_cast<unsigned long long>(reg.hits),
              static_cast<unsigned long long>(reg.misses), reg.hit_rate());
  return batch_ok && deadline_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ext_service_load: %s\n", e.what());
  return 1;
}
