// Fig. 3 reproduction (experiment E1): scalability of the SMP spanning tree
// algorithm at p = 8 versus the sequential baseline on random graphs with
// m = 1.5n, sweeping the problem size. The paper reports parallel speedups
// between 4.5 and 5.5 across the sweep.
//
// Columns: measured wall times on this host (correctness + trend evidence)
// and the Sun E4500 virtual-SMP simulation carrying the speedup comparison
// (see DESIGN.md §5 for why a 1-core container cannot show wall speedup).
//
// Usage: fig3_scalability [--sizes=65536,131072,262144] [--p=8] [--reps=3]
//        [--seed=...] [--csv] [--full]  (--full uses the paper's 1M..4M)
//        [--pin]                        (pin workers: steadier curves)
//        [--trace=out.json]             (Chrome trace of the whole sweep)
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "gen/random_graph.hpp"
#include "model/simulator.hpp"
#include "model/virtual_smp.hpp"
#include "obs/trace.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  std::vector<std::int64_t> default_sizes =
      full ? std::vector<std::int64_t>{1 << 20, 2 << 20, 4 << 20}
           : std::vector<std::int64_t>{1 << 15, 1 << 16, 1 << 17, 1 << 18};
  const auto sizes = cli.get_int_list("sizes", default_sizes);
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  const bool pin = cli.get_bool("pin", false);
  const std::string trace_path = cli.get_string("trace", "");
  cli.reject_unknown();
  if (!trace_path.empty()) {
    obs::trace::label_current_thread("panel-driver");
    obs::trace::enable();
  }

  std::cout << "== Fig. 3: scalability on random graphs, m = 1.5n, p = " << p
            << " ==\n"
            << "paper: speedup between 4.5 and 5.5 across the size sweep\n";

  bench::Table table({"n", "m", "seq_wall", "par_wall", "seq_e4500",
                      "par_e4500", "speedup_e4500"});
  const auto machine = model::sun_e4500();
  ThreadPoolOptions pool_opts;
  pool_opts.pin_threads = pin;
  ThreadPool pool(p, pool_opts);

  for (const std::int64_t size : sizes) {
    const auto n = static_cast<VertexId>(size);
    const auto m = static_cast<EdgeId>(1.5 * static_cast<double>(n));
    const Graph g = gen::random_graph(n, m, seed);

    SpanningForest seq_forest;
    const auto seq =
        bench::time_repeated([&] { seq_forest = bfs_spanning_tree(g); }, reps);
    SMPST_CHECK(validate_spanning_forest(g, seq_forest).ok,
                "sequential forest invalid");

    BaderCongOptions opts;
    opts.seed = seed;
    SpanningForest par_forest;
    const auto par = bench::time_repeated(
        [&] { par_forest = bader_cong_spanning_tree(g, pool, opts); }, reps);
    SMPST_CHECK(validate_spanning_forest(g, par_forest).ok,
                "parallel forest invalid");

    model::VirtualRunOptions vopts;
    vopts.processors = p;
    vopts.seed = seed;
    const auto vrun = model::virtual_traversal(g, vopts);
    const double seq_sim = model::simulate_bfs_seconds(n, m, machine);
    const double par_sim = vrun.seconds_on(machine);

    table.add_row({std::to_string(n), std::to_string(m),
                   bench::fmt_seconds(seq.min_s), bench::fmt_seconds(par.min_s),
                   bench::fmt_seconds(seq_sim), bench::fmt_seconds(par_sim),
                   bench::fmt_double(seq_sim / par_sim)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!trace_path.empty()) {
    std::size_t events = 0;
    if (obs::trace::write_chrome_trace_file(trace_path, &events)) {
      std::cout << "# trace: " << events << " events -> " << trace_path
                << "\n";
    } else {
      std::cout << "# trace: failed to write " << trace_path << "\n";
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig3_scalability: " << e.what() << "\n";
  return 1;
}
