// Experiment E13 — the §3 Helman-JáJá analysis: closed-form cost triples for
// the traversal algorithm vs Shiloach-Vishkin, side by side with the
// *measured* quantities (virtual-SMP replay for the traversal; instrumented
// iteration counts for SV), and the resulting Sun E4500 time predictions.
//
// The paper's comparison this table reproduces: the traversal does O((n+m)/p)
// work with 2 barriers, while SV carries an extra ~log n work factor and
// O(log n) barriers, so the traversal wins at every p.
//
// Usage: table_cost_model [--n=65536] [--threads=1,2,4,8] [--seed=...] [--csv]
#include <cmath>
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "core/shiloach_vishkin.hpp"
#include "gen/registry.hpp"
#include "model/cost_model.hpp"
#include "model/simulator.hpp"
#include "model/virtual_smp.hpp"
#include "sched/thread_pool.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto threads = cli.get_int_list("threads", {1, 2, 4, 8});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  const Graph g = gen::make_family("random-nlogn", n, seed);
  const EdgeId m = g.num_edges();
  const auto machine = model::sun_e4500();

  std::cout << "== E13: Helman-JaJa cost model, formula vs measured replay =="
            << "\n# instance: random-nlogn n=" << g.num_vertices()
            << " m=" << m << "; machine: " << machine.name << "\n"
            << "# seq BFS: T_M = n + 2m = "
            << bench::fmt_double(model::bfs_cost(g.num_vertices(), m)
                                     .mem_accesses,
                                 0)
            << " accesses, predicted "
            << bench::fmt_seconds(model::simulate_bfs_seconds(
                   g.num_vertices(), m, machine))
            << "\n";

  bench::Table table({"p", "bc_TM_formula", "bc_TM_replay", "bc_B",
                      "sv_TM_formula", "sv_iters", "sv_B", "bc_pred",
                      "sv_pred", "ratio"});

  for (const std::int64_t pi : threads) {
    const auto p = static_cast<std::size_t>(pi);

    const auto bc_formula = model::bader_cong_cost(g.num_vertices(), m, p);
    model::VirtualRunOptions vopts;
    vopts.processors = p;
    vopts.seed = seed;
    const auto vrun = model::virtual_traversal(g, vopts);
    const double bc_pred = vrun.seconds_on(machine);

    // SV measured iteration structure.
    ThreadPool pool(p);
    SvStats sstats;
    SvOptions so;
    so.stats = &sstats;
    sv_spanning_tree(g, pool, so);
    const auto sv_formula = model::sv_cost(
        g.num_vertices(), m, p, sstats.iterations,
        std::max<std::uint64_t>(
            1, sstats.shortcut_passes /
                   std::max<std::uint64_t>(1, sstats.iterations)));
    const double sv_pred = model::simulate_sv_seconds(
        sstats, g.num_vertices(), m, p, machine);

    table.add_row({std::to_string(p),
                   bench::fmt_double(bc_formula.mem_accesses, 0),
                   bench::fmt_double(vrun.makespan, 0),
                   bench::fmt_double(bc_formula.barriers, 0),
                   bench::fmt_double(sv_formula.mem_accesses, 0),
                   bench::fmt_count(sstats.iterations),
                   bench::fmt_double(sv_formula.barriers, 0),
                   bench::fmt_seconds(bc_pred), bench::fmt_seconds(sv_pred),
                   bench::fmt_double(sv_pred / bc_pred, 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "table_cost_model: " << e.what() << "\n";
  return 1;
}
