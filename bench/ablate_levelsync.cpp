// Ablation A5 — asynchronous work stealing (the paper) vs level-synchronous
// parallel BFS (the strategy of modern frameworks like Ligra/GBBS).
//
// The structural difference is barrier count: the paper's traversal uses O(1)
// barriers regardless of topology, while level-synchronous BFS pays one
// barrier per BFS level — O(diameter). On low-diameter graphs the two are
// equivalent; on meshes (diameter ~ sqrt(n)) and chains (diameter ~ n) the
// barrier term dominates and the asynchronous design wins decisively. This
// bench measures both implementations' wall time and reports the E4500 cost
// prediction for each (work/p plus barrier overhead).
//
// Usage: ablate_levelsync [--n=65536] [--p=8] [--reps=2] [--seed=...] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/parallel_bfs.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "graph/stats.hpp"
#include "model/cost_model.hpp"
#include "model/virtual_smp.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  const auto machine = model::sun_e4500();
  std::cout << "== A5: work stealing (O(1) barriers) vs level-synchronous "
               "BFS (O(diameter) barriers), p="
            << p << " ==\n";

  bench::Table table({"family", "diam>=", "levels", "bc_wall", "lsync_wall",
                      "bc_e4500", "lsync_e4500", "lsync/bc"});
  ThreadPool pool(p);

  for (const char* family :
       {"random-nlogn", "geo-hier", "torus-rowmajor", "2d60", "chain-seq"}) {
    const Graph g = gen::make_family(family, n, seed);
    const auto gstats = compute_stats(g);

    BaderCongOptions bc;
    bc.seed = seed;
    SpanningForest forest;
    const auto bc_time = bench::time_repeated(
        [&] { forest = bader_cong_spanning_tree(g, pool, bc); }, reps);
    SMPST_CHECK(validate_spanning_forest(g, forest).ok, "bc invalid");

    ParallelBfsStats ls_stats;
    ParallelBfsOptions ls;
    ls.stats = &ls_stats;
    const auto ls_time = bench::time_repeated(
        [&] { forest = parallel_bfs_spanning_tree(g, pool, ls); }, reps);
    SMPST_CHECK(validate_spanning_forest(g, forest).ok, "lsync invalid");

    // E4500 predictions: the traversal from the virtual-SMP replay; the
    // level-synchronous run as perfectly-balanced per-level work plus one
    // barrier per level.
    model::VirtualRunOptions vopts;
    vopts.processors = p;
    vopts.seed = seed;
    const double bc_pred =
        model::virtual_traversal(g, vopts).seconds_on(machine);
    const double unit_ns =
        machine.noncontig_access_ns + machine.local_op_ns;
    const double work_units =
        static_cast<double>(g.num_vertices()) +
        2.0 * static_cast<double>(g.num_edges());
    const double ls_pred =
        (work_units / static_cast<double>(p) * unit_ns +
         static_cast<double>(ls_stats.barriers) * machine.barrier_ns) *
        1e-9;

    table.add_row({family, std::to_string(gstats.diameter_lower_bound),
                   bench::fmt_count(ls_stats.levels),
                   bench::fmt_seconds(bc_time.min_s),
                   bench::fmt_seconds(ls_time.min_s),
                   bench::fmt_seconds(bc_pred), bench::fmt_seconds(ls_pred),
                   bench::fmt_double(ls_pred / bc_pred, 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ablate_levelsync: " << e.what() << "\n";
  return 1;
}
