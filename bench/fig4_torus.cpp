// Fig. 4 panels 1-2 (experiments E2, E3): 2D torus with row-major and with
// random vertex labels, runtime vs processor count, against the sequential
// baseline. The paper's headline observations reproduced here:
//   * the traversal algorithm beats sequential BFS for p > 2 and is
//     insensitive to the labelling;
//   * SV runs faster with more processors but often stays slower than
//     sequential, and its iteration count jumps under random labels.
//
// Usage: fig4_torus [--n=65536] [--threads=1,2,4,8] [--reps=3] [--seed=...]
//        [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "torus-rowmajor", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 1: torus, row-major labels ==\n";
  cfg.family = "torus-rowmajor";
  smpst::bench::run_panel(cfg, std::cout);

  std::cout << "\n== Fig. 4 panel 2: torus, random labels ==\n";
  cfg.family = "torus-random";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_torus: " << e.what() << "\n";
  return 1;
}
