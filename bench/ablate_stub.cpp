// Ablation A1 — the stub spanning tree's size. The paper grows a stub of
// O(p) vertices by random walk before the parallel traversal; this sweep
// varies the walk length from zero (every processor but one starts idle and
// must steal) through the O(p) default to much larger serial prefixes,
// measuring virtual-SMP makespan and load balance. Expectation: tiny stubs
// hurt startup balance a little, huge stubs serialize work, O(p) is a sweet
// spot — and on well-connected graphs the effect is small (stealing recovers
// quickly), which is itself a finding worth recording.
//
// Usage: ablate_stub [--n=65536] [--p=8] [--family=random-nlogn] [--seed=...]
//        [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "gen/registry.hpp"
#include "model/cost_model.hpp"
#include "model/virtual_smp.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto family = cli.get_string("family", "random-nlogn");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  const Graph g = gen::make_family(family, n, seed);
  const auto machine = model::sun_e4500();

  std::cout << "== A1: stub spanning tree size ablation, " << family
            << ", p=" << p << " (virtual SMP) ==\n";

  bench::Table table({"stub_steps", "stub_vertices", "makespan",
                      "imbalance", "steals", "e4500_time"});
  for (const std::size_t steps :
       {std::size_t{1}, p / 2 + 1, 2 * p, 8 * p, 64 * p, 1024 * p}) {
    model::VirtualRunOptions opts;
    opts.processors = p;
    opts.stub_steps = steps;
    opts.seed = seed;
    const auto run = model::virtual_traversal(g, opts);
    std::uint64_t steals = 0;
    for (const auto& t : run.per_thread) steals += t.steals_succeeded;
    table.add_row({std::to_string(steps),
                   bench::fmt_count(run.stub_vertices),
                   bench::fmt_double(run.makespan, 0),
                   bench::fmt_double(run.load_imbalance()),
                   bench::fmt_count(steals),
                   bench::fmt_seconds(run.seconds_on(machine))});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ablate_stub: " << e.what() << "\n";
  return 1;
}
