// Fig. 4 panels 9-10 (experiment E10): the degenerate chain — the paper's
// pathological case — with sequential and with random vertex labels. This is
// the input family where the traversal's queues hold at most one vertex, so
// work stealing thrashes and the starvation detector's raison d'être shows;
// SV's labelling sensitivity is also at its most extreme here.
//
// Usage: fig4_chain [--n=65536] [--threads=1,2,4,8] [--reps=3] [--seed=...]
//        [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "chain-seq", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 9: degenerate chain, sequential labels ==\n";
  cfg.family = "chain-seq";
  smpst::bench::run_panel(cfg, std::cout);

  std::cout << "\n== Fig. 4 panel 10: degenerate chain, random labels ==\n";
  cfg.family = "chain-random";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_chain: " << e.what() << "\n";
  return 1;
}
