// Experiment X2 — the paper's stated motivation in action: spanning trees as
// the building block for biconnectivity and ear decomposition. Times the
// full pipelines (parallel spanning tree -> rooted-tree algebra -> ears;
// lowpoint biconnectivity) across families and reports structural outputs.
//
// Usage: ext_apps [--n=32768] [--p=4] [--reps=2] [--seed=...] [--csv]
#include <iostream>

#include "apps/biconnectivity.hpp"
#include "apps/tarjan_vishkin.hpp"
#include "apps/ear_decomposition.hpp"
#include "apps/tree_algebra.hpp"
#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "cc/connected_components.hpp"
#include "core/bader_cong.hpp"
#include "gen/registry.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 15));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 4));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== X2: spanning trees as a building block (biconnectivity, "
               "ear decomposition), p="
            << p << " ==\n";

  bench::Table table({"family", "bridges", "artic_pts", "bccs", "ears",
                      "bicon_wall", "tv_wall", "tree_wall", "ears_wall"});
  ThreadPool pool(p);

  for (const char* family :
       {"random-nlogn", "random-1.5n", "geo-hier", "2d60", "ad3"}) {
    const Graph g = gen::make_family(family, n, seed);

    apps::BiconnectivityResult bic;
    const auto bic_time =
        bench::time_repeated([&] { bic = apps::biconnectivity(g); }, reps);
    VertexId artic = 0;
    for (bool a : bic.is_articulation) artic += a ? 1 : 0;

    BaderCongOptions opts;
    opts.seed = seed;
    SpanningForest forest;
    const auto tree_time = bench::time_repeated(
        [&] { forest = bader_cong_spanning_tree(g, pool, opts); }, reps);

    apps::EarDecomposition ears;
    const auto ears_time = bench::time_repeated(
        [&] { ears = apps::ear_decomposition(g, forest); }, reps);

    // Tarjan-Vishkin parallel BCC over the same spanning tree; verify it
    // finds the same component count as the sequential lowpoint pass.
    cc::ParallelCcOptions tv_opts;
    tv_opts.num_threads = p;
    apps::ParallelBccResult tv;
    const auto tv_time = bench::time_repeated(
        [&] { tv = apps::tarjan_vishkin_bcc(g, forest, tv_opts); }, reps);
    SMPST_CHECK(tv.bcc_count == bic.bcc_count,
                "tarjan-vishkin vs lowpoint BCC count mismatch");

    table.add_row({family, std::to_string(bic.bridges.size()),
                   std::to_string(artic), std::to_string(bic.bcc_count),
                   std::to_string(ears.num_ears()),
                   bench::fmt_seconds(bic_time.min_s),
                   bench::fmt_seconds(tv_time.min_s),
                   bench::fmt_seconds(tree_time.min_s),
                   bench::fmt_seconds(ears_time.min_s)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ext_apps: " << e.what() << "\n";
  return 1;
}
