// Experiment X1 — the paper's future-work extensions on the same framework:
// connected components (four engines) and minimum spanning forest (Kruskal /
// Prim / parallel Borůvka), timed across families with agreement checks.
//
// Usage: ext_cc_msf [--n=32768] [--p=4] [--reps=2] [--seed=...] [--csv]
#include <algorithm>
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "cc/connected_components.hpp"
#include "gen/registry.hpp"
#include "msf/boruvka.hpp"
#include "msf/kruskal.hpp"
#include "msf/prim.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 15));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 4));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== X1a: connected components engines, p=" << p << " ==\n";
  bench::Table cc_table({"family", "components", "dsu_wall", "bfs_wall",
                         "sv_wall", "lp_wall", "rem_wall", "rmate_wall"});
  for (const char* family :
       {"random-1.5n", "torus-rowmajor", "ad3", "geo-hier", "2d60"}) {
    const Graph g = gen::make_family(family, n, seed);
    cc::CcResult truth;
    const auto dsu =
        bench::time_repeated([&] { truth = cc::cc_union_find(g); }, reps);
    cc::CcResult r;
    const auto bfs = bench::time_repeated([&] { r = cc::cc_bfs(g); }, reps);
    SMPST_CHECK(cc::same_partition(r.label, truth.label), "bfs cc mismatch");
    cc::ParallelCcOptions popts;
    popts.num_threads = p;
    const auto sv = bench::time_repeated(
        [&] { r = cc::cc_shiloach_vishkin(g, popts); }, reps);
    SMPST_CHECK(cc::same_partition(r.label, truth.label), "sv cc mismatch");
    const auto lp = bench::time_repeated(
        [&] { r = cc::cc_label_propagation(g, popts); }, reps);
    SMPST_CHECK(cc::same_partition(r.label, truth.label), "lp cc mismatch");
    const auto rem = bench::time_repeated(
        [&] { r = cc::cc_rem_union(g, popts); }, reps);
    SMPST_CHECK(cc::same_partition(r.label, truth.label), "rem cc mismatch");
    const auto rmate = bench::time_repeated(
        [&] { r = cc::cc_random_mate(g, popts); }, reps);
    SMPST_CHECK(cc::same_partition(r.label, truth.label), "rmate cc mismatch");
    cc_table.add_row({family, std::to_string(truth.count),
                      bench::fmt_seconds(dsu.min_s),
                      bench::fmt_seconds(bfs.min_s),
                      bench::fmt_seconds(sv.min_s),
                      bench::fmt_seconds(lp.min_s),
                      bench::fmt_seconds(rem.min_s),
                      bench::fmt_seconds(rmate.min_s)});
  }
  if (csv) {
    cc_table.print_csv(std::cout);
  } else {
    cc_table.print(std::cout);
  }

  std::cout << "\n== X1b: minimum spanning forest, p=" << p << " ==\n";
  bench::Table msf_table({"family", "msf_edges", "kruskal_wall", "prim_wall",
                          "boruvka_wall", "boruvka_rounds"});
  for (const char* family :
       {"random-1.5n", "torus-rowmajor", "ad3", "geo-flat"}) {
    const Graph g = gen::make_family(family, n, seed);
    const auto wg = msf::with_random_weights(g, seed);

    std::vector<msf::WeightedEdge> k;
    const auto kt = bench::time_repeated([&] { k = msf::kruskal(wg); }, reps);
    std::vector<msf::WeightedEdge> pr;
    const auto pt = bench::time_repeated([&] { pr = msf::prim(wg); }, reps);
    msf::BoruvkaStats bstats;
    msf::BoruvkaOptions bopts;
    bopts.num_threads = p;
    bopts.stats = &bstats;
    std::vector<msf::WeightedEdge> b;
    const auto bt =
        bench::time_repeated([&] { b = msf::boruvka(wg, bopts); }, reps);

    SMPST_CHECK(k.size() == pr.size() && k.size() == b.size(),
                "msf edge counts disagree");
    SMPST_CHECK(std::abs(msf::total_weight(k) - msf::total_weight(b)) < 1e-9,
                "msf weights disagree");

    msf_table.add_row({family, std::to_string(k.size()),
                       bench::fmt_seconds(kt.min_s),
                       bench::fmt_seconds(pt.min_s),
                       bench::fmt_seconds(bt.min_s),
                       bench::fmt_count(bstats.rounds)});
  }
  if (csv) {
    msf_table.print_csv(std::cout);
  } else {
    msf_table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "ext_cc_msf: " << e.what() << "\n";
  return 1;
}
