// Fig. 4 panel 3 (experiment E4): uniform random graph with m = n log2 n
// edges (the paper's 1M-vertex / 20M-edge instance), runtime vs processor
// count against the sequential baseline.
//
// Usage: fig4_random [--n=65536] [--threads=1,2,4,8] [--reps=3] [--seed=...]
//        [--csv] [--no-sv] [--sv-lock]
#include <iostream>

#include "bench_util/runner.hpp"

int main(int argc, char** argv) try {
  const smpst::bench::Cli cli(argc, argv);
  auto cfg = smpst::bench::panel_from_cli(cli, "random-nlogn", 1 << 16);
  cli.reject_unknown();

  std::cout << "== Fig. 4 panel 3: random graph, m = n log2 n ==\n";
  smpst::bench::run_panel(cfg, std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fig4_random: " << e.what() << "\n";
  return 1;
}
