// Reproducible benchmark baseline: runs seq-BFS, Bader–Cong, parallel-BFS,
// and SV over the paper's graph families and writes the machine-readable,
// schema-versioned BENCH_smpst.json next to the human-readable progress
// report, so perf claims can be diffed across commits (docs/BENCHMARKING.md).
//
// Usage: perf_suite [--scale=tiny|small|medium|large] [--n=32768]
//                   [--families=torus-rowmajor,random-nlogn,...]
//                   [--threads=1,2,4] [--repeats=5] [--seed=...]
//                   [--no-sv] [--no-pbfs] [--no-dir] [--pin]
//                   [--no-interleave]
//                   [--out=BENCH_smpst.json] [--trace=out.json]
//                   [--failpoints=site=spec;...]
//                   [--serving=net_load.json]
//
// --serving embeds a bench/ext_net_load --json summary as the optional
// "serving" section of the document (schema v2), so the serving-path
// baseline rides along with the algorithm columns.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util/cli.hpp"
#include "bench_util/perf_suite.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const bench::PerfSuiteConfig config = bench::perf_suite_config_from_cli(cli);
  const std::string out_path = cli.get_string("out", "BENCH_smpst.json");
  const std::string serving_path = cli.get_string("serving", "");
  cli.reject_unknown();

  std::cout << "== perf_suite: seq-BFS / Bader-Cong / parallel-BFS / SV, n="
            << config.n << ", repeats=" << config.repeats << " ==\n";
  bench::PerfSuiteResult result = bench::run_perf_suite(config, std::cout);
  if (!serving_path.empty()) {
    std::ifstream in(serving_path);
    if (!in) {
      std::cerr << "perf_suite: cannot read --serving file " << serving_path
                << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    result.serving_json = buf.str();
  }

  if (!bench::write_perf_suite_json_file(result, out_path)) {
    std::cerr << "perf_suite: failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "# wrote " << out_path << " (schema_version="
            << bench::kPerfSuiteSchemaVersion << ")\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "perf_suite: " << e.what() << "\n";
  return 1;
}
