// Experiment E11 — the paper's prose claim about benign colouring races:
// "the number of vertices that appear in multiple processors' queues at the
//  same time are a miniscule percentage (for example, less than ten vertices
//  for a graph with millions of vertices)".
//
// For every family we run the real multithreaded traversal several times and
// report duplicate expansions (vertices processed more than once) next to n.
//
// Usage: table_races [--n=65536] [--p=8] [--runs=5] [--seed=...] [--csv]
#include <iostream>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "core/bader_cong.hpp"
#include "core/validate.hpp"
#include "gen/registry.hpp"
#include "sched/thread_pool.hpp"
#include "support/assert.hpp"

using namespace smpst;

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  const auto n = static_cast<VertexId>(cli.get_int("n", 1 << 16));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 8));
  const auto runs = static_cast<std::size_t>(cli.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x5eed));
  const bool csv = cli.get_bool("csv", false);
  cli.reject_unknown();

  std::cout << "== E11: duplicate expansions from benign colouring races, p="
            << p << " ==\n"
            << "paper: < 10 duplicates for graphs with millions of vertices\n";

  bench::Table table(
      {"family", "n", "dup_min", "dup_max", "dup_mean", "dup_ppm"});
  ThreadPool pool(p);

  for (const char* family :
       {"torus-rowmajor", "random-nlogn", "random-1.5n", "2d60", "3d40", "ad3",
        "geo-flat", "geo-hier", "chain-seq", "rmat"}) {
    const Graph g = gen::make_family(family, n, seed);
    std::uint64_t min_d = ~0ULL;
    std::uint64_t max_d = 0;
    std::uint64_t sum_d = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      TraversalStats stats;
      BaderCongOptions opts;
      opts.seed = seed + r;
      opts.enable_fallback = false;  // measure the raw traversal
      opts.stats = &stats;
      const auto f = bader_cong_spanning_tree(g, pool, opts);
      SMPST_CHECK(validate_spanning_forest(g, f).ok, "invalid forest");
      min_d = std::min(min_d, stats.duplicate_expansions);
      max_d = std::max(max_d, stats.duplicate_expansions);
      sum_d += stats.duplicate_expansions;
    }
    const double mean =
        static_cast<double>(sum_d) / static_cast<double>(runs);
    table.add_row({family, std::to_string(g.num_vertices()),
                   bench::fmt_count(min_d), bench::fmt_count(max_d),
                   bench::fmt_double(mean, 1),
                   bench::fmt_double(1e6 * mean / g.num_vertices(), 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "table_races: " << e.what() << "\n";
  return 1;
}
