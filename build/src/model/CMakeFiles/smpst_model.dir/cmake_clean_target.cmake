file(REMOVE_RECURSE
  "libsmpst_model.a"
)
