
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cost_model.cpp" "src/model/CMakeFiles/smpst_model.dir/cost_model.cpp.o" "gcc" "src/model/CMakeFiles/smpst_model.dir/cost_model.cpp.o.d"
  "/root/repo/src/model/simulator.cpp" "src/model/CMakeFiles/smpst_model.dir/simulator.cpp.o" "gcc" "src/model/CMakeFiles/smpst_model.dir/simulator.cpp.o.d"
  "/root/repo/src/model/virtual_smp.cpp" "src/model/CMakeFiles/smpst_model.dir/virtual_smp.cpp.o" "gcc" "src/model/CMakeFiles/smpst_model.dir/virtual_smp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/smpst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smpst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smpst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
