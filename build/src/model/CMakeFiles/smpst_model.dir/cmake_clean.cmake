file(REMOVE_RECURSE
  "CMakeFiles/smpst_model.dir/cost_model.cpp.o"
  "CMakeFiles/smpst_model.dir/cost_model.cpp.o.d"
  "CMakeFiles/smpst_model.dir/simulator.cpp.o"
  "CMakeFiles/smpst_model.dir/simulator.cpp.o.d"
  "CMakeFiles/smpst_model.dir/virtual_smp.cpp.o"
  "CMakeFiles/smpst_model.dir/virtual_smp.cpp.o.d"
  "libsmpst_model.a"
  "libsmpst_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
