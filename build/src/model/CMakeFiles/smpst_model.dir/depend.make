# Empty dependencies file for smpst_model.
# This may be replaced when dependencies are built.
