# Empty compiler generated dependencies file for smpst_bench_util.
# This may be replaced when dependencies are built.
