file(REMOVE_RECURSE
  "libsmpst_bench_util.a"
)
