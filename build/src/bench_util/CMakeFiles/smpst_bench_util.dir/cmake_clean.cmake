file(REMOVE_RECURSE
  "CMakeFiles/smpst_bench_util.dir/cli.cpp.o"
  "CMakeFiles/smpst_bench_util.dir/cli.cpp.o.d"
  "CMakeFiles/smpst_bench_util.dir/runner.cpp.o"
  "CMakeFiles/smpst_bench_util.dir/runner.cpp.o.d"
  "CMakeFiles/smpst_bench_util.dir/stats.cpp.o"
  "CMakeFiles/smpst_bench_util.dir/stats.cpp.o.d"
  "CMakeFiles/smpst_bench_util.dir/table.cpp.o"
  "CMakeFiles/smpst_bench_util.dir/table.cpp.o.d"
  "libsmpst_bench_util.a"
  "libsmpst_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
