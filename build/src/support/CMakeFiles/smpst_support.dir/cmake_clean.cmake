file(REMOVE_RECURSE
  "CMakeFiles/smpst_support.dir/cpu.cpp.o"
  "CMakeFiles/smpst_support.dir/cpu.cpp.o.d"
  "CMakeFiles/smpst_support.dir/prng.cpp.o"
  "CMakeFiles/smpst_support.dir/prng.cpp.o.d"
  "CMakeFiles/smpst_support.dir/timer.cpp.o"
  "CMakeFiles/smpst_support.dir/timer.cpp.o.d"
  "libsmpst_support.a"
  "libsmpst_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
