file(REMOVE_RECURSE
  "libsmpst_support.a"
)
