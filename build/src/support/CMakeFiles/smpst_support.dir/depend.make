# Empty dependencies file for smpst_support.
# This may be replaced when dependencies are built.
