file(REMOVE_RECURSE
  "libsmpst_gen.a"
)
