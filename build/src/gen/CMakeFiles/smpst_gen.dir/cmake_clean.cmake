file(REMOVE_RECURSE
  "CMakeFiles/smpst_gen.dir/geographic.cpp.o"
  "CMakeFiles/smpst_gen.dir/geographic.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/geometric.cpp.o"
  "CMakeFiles/smpst_gen.dir/geometric.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/kronecker.cpp.o"
  "CMakeFiles/smpst_gen.dir/kronecker.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/mesh.cpp.o"
  "CMakeFiles/smpst_gen.dir/mesh.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/random_graph.cpp.o"
  "CMakeFiles/smpst_gen.dir/random_graph.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/registry.cpp.o"
  "CMakeFiles/smpst_gen.dir/registry.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/simple.cpp.o"
  "CMakeFiles/smpst_gen.dir/simple.cpp.o.d"
  "CMakeFiles/smpst_gen.dir/torus.cpp.o"
  "CMakeFiles/smpst_gen.dir/torus.cpp.o.d"
  "libsmpst_gen.a"
  "libsmpst_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
