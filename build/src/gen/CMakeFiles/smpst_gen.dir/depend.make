# Empty dependencies file for smpst_gen.
# This may be replaced when dependencies are built.
