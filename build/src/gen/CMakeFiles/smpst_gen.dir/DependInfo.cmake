
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/geographic.cpp" "src/gen/CMakeFiles/smpst_gen.dir/geographic.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/geographic.cpp.o.d"
  "/root/repo/src/gen/geometric.cpp" "src/gen/CMakeFiles/smpst_gen.dir/geometric.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/geometric.cpp.o.d"
  "/root/repo/src/gen/kronecker.cpp" "src/gen/CMakeFiles/smpst_gen.dir/kronecker.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/kronecker.cpp.o.d"
  "/root/repo/src/gen/mesh.cpp" "src/gen/CMakeFiles/smpst_gen.dir/mesh.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/mesh.cpp.o.d"
  "/root/repo/src/gen/random_graph.cpp" "src/gen/CMakeFiles/smpst_gen.dir/random_graph.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/random_graph.cpp.o.d"
  "/root/repo/src/gen/registry.cpp" "src/gen/CMakeFiles/smpst_gen.dir/registry.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/registry.cpp.o.d"
  "/root/repo/src/gen/simple.cpp" "src/gen/CMakeFiles/smpst_gen.dir/simple.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/simple.cpp.o.d"
  "/root/repo/src/gen/torus.cpp" "src/gen/CMakeFiles/smpst_gen.dir/torus.cpp.o" "gcc" "src/gen/CMakeFiles/smpst_gen.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/smpst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
