file(REMOVE_RECURSE
  "libsmpst_sched.a"
)
