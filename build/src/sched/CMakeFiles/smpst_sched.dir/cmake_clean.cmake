file(REMOVE_RECURSE
  "CMakeFiles/smpst_sched.dir/barrier.cpp.o"
  "CMakeFiles/smpst_sched.dir/barrier.cpp.o.d"
  "CMakeFiles/smpst_sched.dir/termination.cpp.o"
  "CMakeFiles/smpst_sched.dir/termination.cpp.o.d"
  "CMakeFiles/smpst_sched.dir/thread_pool.cpp.o"
  "CMakeFiles/smpst_sched.dir/thread_pool.cpp.o.d"
  "libsmpst_sched.a"
  "libsmpst_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
