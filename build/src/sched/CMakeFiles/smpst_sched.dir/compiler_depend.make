# Empty compiler generated dependencies file for smpst_sched.
# This may be replaced when dependencies are built.
