file(REMOVE_RECURSE
  "CMakeFiles/smpst_apps.dir/biconnectivity.cpp.o"
  "CMakeFiles/smpst_apps.dir/biconnectivity.cpp.o.d"
  "CMakeFiles/smpst_apps.dir/ear_decomposition.cpp.o"
  "CMakeFiles/smpst_apps.dir/ear_decomposition.cpp.o.d"
  "CMakeFiles/smpst_apps.dir/tarjan_vishkin.cpp.o"
  "CMakeFiles/smpst_apps.dir/tarjan_vishkin.cpp.o.d"
  "CMakeFiles/smpst_apps.dir/tree_algebra.cpp.o"
  "CMakeFiles/smpst_apps.dir/tree_algebra.cpp.o.d"
  "libsmpst_apps.a"
  "libsmpst_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
