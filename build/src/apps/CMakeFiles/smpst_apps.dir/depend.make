# Empty dependencies file for smpst_apps.
# This may be replaced when dependencies are built.
