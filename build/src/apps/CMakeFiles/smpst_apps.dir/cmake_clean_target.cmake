file(REMOVE_RECURSE
  "libsmpst_apps.a"
)
