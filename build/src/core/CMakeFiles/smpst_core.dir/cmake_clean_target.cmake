file(REMOVE_RECURSE
  "libsmpst_core.a"
)
