file(REMOVE_RECURSE
  "CMakeFiles/smpst_core.dir/algorithms.cpp.o"
  "CMakeFiles/smpst_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/smpst_core.dir/bader_cong.cpp.o"
  "CMakeFiles/smpst_core.dir/bader_cong.cpp.o.d"
  "CMakeFiles/smpst_core.dir/bfs.cpp.o"
  "CMakeFiles/smpst_core.dir/bfs.cpp.o.d"
  "CMakeFiles/smpst_core.dir/dfs.cpp.o"
  "CMakeFiles/smpst_core.dir/dfs.cpp.o.d"
  "CMakeFiles/smpst_core.dir/hcs.cpp.o"
  "CMakeFiles/smpst_core.dir/hcs.cpp.o.d"
  "CMakeFiles/smpst_core.dir/parallel_bfs.cpp.o"
  "CMakeFiles/smpst_core.dir/parallel_bfs.cpp.o.d"
  "CMakeFiles/smpst_core.dir/shiloach_vishkin.cpp.o"
  "CMakeFiles/smpst_core.dir/shiloach_vishkin.cpp.o.d"
  "CMakeFiles/smpst_core.dir/spanning_forest.cpp.o"
  "CMakeFiles/smpst_core.dir/spanning_forest.cpp.o.d"
  "CMakeFiles/smpst_core.dir/validate.cpp.o"
  "CMakeFiles/smpst_core.dir/validate.cpp.o.d"
  "libsmpst_core.a"
  "libsmpst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
