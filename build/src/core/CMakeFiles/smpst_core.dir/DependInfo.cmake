
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/smpst_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/bader_cong.cpp" "src/core/CMakeFiles/smpst_core.dir/bader_cong.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/bader_cong.cpp.o.d"
  "/root/repo/src/core/bfs.cpp" "src/core/CMakeFiles/smpst_core.dir/bfs.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/bfs.cpp.o.d"
  "/root/repo/src/core/dfs.cpp" "src/core/CMakeFiles/smpst_core.dir/dfs.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/dfs.cpp.o.d"
  "/root/repo/src/core/hcs.cpp" "src/core/CMakeFiles/smpst_core.dir/hcs.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/hcs.cpp.o.d"
  "/root/repo/src/core/parallel_bfs.cpp" "src/core/CMakeFiles/smpst_core.dir/parallel_bfs.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/parallel_bfs.cpp.o.d"
  "/root/repo/src/core/shiloach_vishkin.cpp" "src/core/CMakeFiles/smpst_core.dir/shiloach_vishkin.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/shiloach_vishkin.cpp.o.d"
  "/root/repo/src/core/spanning_forest.cpp" "src/core/CMakeFiles/smpst_core.dir/spanning_forest.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/spanning_forest.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/smpst_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/smpst_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/smpst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smpst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
