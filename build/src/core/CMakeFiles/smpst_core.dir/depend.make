# Empty dependencies file for smpst_core.
# This may be replaced when dependencies are built.
