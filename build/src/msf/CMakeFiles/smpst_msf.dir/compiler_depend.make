# Empty compiler generated dependencies file for smpst_msf.
# This may be replaced when dependencies are built.
