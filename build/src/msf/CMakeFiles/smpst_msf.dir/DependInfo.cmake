
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msf/boruvka.cpp" "src/msf/CMakeFiles/smpst_msf.dir/boruvka.cpp.o" "gcc" "src/msf/CMakeFiles/smpst_msf.dir/boruvka.cpp.o.d"
  "/root/repo/src/msf/kruskal.cpp" "src/msf/CMakeFiles/smpst_msf.dir/kruskal.cpp.o" "gcc" "src/msf/CMakeFiles/smpst_msf.dir/kruskal.cpp.o.d"
  "/root/repo/src/msf/prim.cpp" "src/msf/CMakeFiles/smpst_msf.dir/prim.cpp.o" "gcc" "src/msf/CMakeFiles/smpst_msf.dir/prim.cpp.o.d"
  "/root/repo/src/msf/weighted.cpp" "src/msf/CMakeFiles/smpst_msf.dir/weighted.cpp.o" "gcc" "src/msf/CMakeFiles/smpst_msf.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/smpst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/smpst_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smpst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smpst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
