file(REMOVE_RECURSE
  "CMakeFiles/smpst_msf.dir/boruvka.cpp.o"
  "CMakeFiles/smpst_msf.dir/boruvka.cpp.o.d"
  "CMakeFiles/smpst_msf.dir/kruskal.cpp.o"
  "CMakeFiles/smpst_msf.dir/kruskal.cpp.o.d"
  "CMakeFiles/smpst_msf.dir/prim.cpp.o"
  "CMakeFiles/smpst_msf.dir/prim.cpp.o.d"
  "CMakeFiles/smpst_msf.dir/weighted.cpp.o"
  "CMakeFiles/smpst_msf.dir/weighted.cpp.o.d"
  "libsmpst_msf.a"
  "libsmpst_msf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_msf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
