file(REMOVE_RECURSE
  "libsmpst_msf.a"
)
