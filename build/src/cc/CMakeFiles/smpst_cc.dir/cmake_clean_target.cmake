file(REMOVE_RECURSE
  "libsmpst_cc.a"
)
