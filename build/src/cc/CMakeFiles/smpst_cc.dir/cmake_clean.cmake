file(REMOVE_RECURSE
  "CMakeFiles/smpst_cc.dir/connected_components.cpp.o"
  "CMakeFiles/smpst_cc.dir/connected_components.cpp.o.d"
  "CMakeFiles/smpst_cc.dir/union_find.cpp.o"
  "CMakeFiles/smpst_cc.dir/union_find.cpp.o.d"
  "libsmpst_cc.a"
  "libsmpst_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
