# Empty dependencies file for smpst_cc.
# This may be replaced when dependencies are built.
