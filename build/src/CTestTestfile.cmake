# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("graph")
subdirs("gen")
subdirs("sched")
subdirs("core")
subdirs("cc")
subdirs("msf")
subdirs("apps")
subdirs("model")
subdirs("bench_util")
