file(REMOVE_RECURSE
  "libsmpst_graph.a"
)
