file(REMOVE_RECURSE
  "CMakeFiles/smpst_graph.dir/builder.cpp.o"
  "CMakeFiles/smpst_graph.dir/builder.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/edge_list.cpp.o"
  "CMakeFiles/smpst_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/formats.cpp.o"
  "CMakeFiles/smpst_graph.dir/formats.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/graph.cpp.o"
  "CMakeFiles/smpst_graph.dir/graph.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/io.cpp.o"
  "CMakeFiles/smpst_graph.dir/io.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/relabel.cpp.o"
  "CMakeFiles/smpst_graph.dir/relabel.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/stats.cpp.o"
  "CMakeFiles/smpst_graph.dir/stats.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/subgraph.cpp.o"
  "CMakeFiles/smpst_graph.dir/subgraph.cpp.o.d"
  "CMakeFiles/smpst_graph.dir/transform.cpp.o"
  "CMakeFiles/smpst_graph.dir/transform.cpp.o.d"
  "libsmpst_graph.a"
  "libsmpst_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smpst_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
