
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/smpst_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/graph/CMakeFiles/smpst_graph.dir/edge_list.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/edge_list.cpp.o.d"
  "/root/repo/src/graph/formats.cpp" "src/graph/CMakeFiles/smpst_graph.dir/formats.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/formats.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/smpst_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/smpst_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/relabel.cpp" "src/graph/CMakeFiles/smpst_graph.dir/relabel.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/relabel.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/smpst_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/stats.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/smpst_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/subgraph.cpp.o.d"
  "/root/repo/src/graph/transform.cpp" "src/graph/CMakeFiles/smpst_graph.dir/transform.cpp.o" "gcc" "src/graph/CMakeFiles/smpst_graph.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
