# Empty compiler generated dependencies file for smpst_graph.
# This may be replaced when dependencies are built.
