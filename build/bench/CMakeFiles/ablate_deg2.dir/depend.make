# Empty dependencies file for ablate_deg2.
# This may be replaced when dependencies are built.
