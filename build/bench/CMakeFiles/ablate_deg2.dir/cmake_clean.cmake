file(REMOVE_RECURSE
  "CMakeFiles/ablate_deg2.dir/ablate_deg2.cpp.o"
  "CMakeFiles/ablate_deg2.dir/ablate_deg2.cpp.o.d"
  "ablate_deg2"
  "ablate_deg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_deg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
