file(REMOVE_RECURSE
  "CMakeFiles/ablate_steal.dir/ablate_steal.cpp.o"
  "CMakeFiles/ablate_steal.dir/ablate_steal.cpp.o.d"
  "ablate_steal"
  "ablate_steal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_steal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
