# Empty dependencies file for ablate_steal.
# This may be replaced when dependencies are built.
