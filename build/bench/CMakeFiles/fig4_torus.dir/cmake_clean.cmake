file(REMOVE_RECURSE
  "CMakeFiles/fig4_torus.dir/fig4_torus.cpp.o"
  "CMakeFiles/fig4_torus.dir/fig4_torus.cpp.o.d"
  "fig4_torus"
  "fig4_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
