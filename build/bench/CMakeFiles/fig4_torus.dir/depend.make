# Empty dependencies file for fig4_torus.
# This may be replaced when dependencies are built.
