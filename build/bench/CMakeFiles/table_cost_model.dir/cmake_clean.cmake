file(REMOVE_RECURSE
  "CMakeFiles/table_cost_model.dir/table_cost_model.cpp.o"
  "CMakeFiles/table_cost_model.dir/table_cost_model.cpp.o.d"
  "table_cost_model"
  "table_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
