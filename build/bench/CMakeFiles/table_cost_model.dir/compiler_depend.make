# Empty compiler generated dependencies file for table_cost_model.
# This may be replaced when dependencies are built.
