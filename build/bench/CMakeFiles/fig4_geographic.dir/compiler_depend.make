# Empty compiler generated dependencies file for fig4_geographic.
# This may be replaced when dependencies are built.
