file(REMOVE_RECURSE
  "CMakeFiles/fig4_geographic.dir/fig4_geographic.cpp.o"
  "CMakeFiles/fig4_geographic.dir/fig4_geographic.cpp.o.d"
  "fig4_geographic"
  "fig4_geographic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_geographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
