file(REMOVE_RECURSE
  "CMakeFiles/fig4_random.dir/fig4_random.cpp.o"
  "CMakeFiles/fig4_random.dir/fig4_random.cpp.o.d"
  "fig4_random"
  "fig4_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
