# Empty dependencies file for fig4_random.
# This may be replaced when dependencies are built.
