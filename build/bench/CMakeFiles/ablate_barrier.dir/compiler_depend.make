# Empty compiler generated dependencies file for ablate_barrier.
# This may be replaced when dependencies are built.
