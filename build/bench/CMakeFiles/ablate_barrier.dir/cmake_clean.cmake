file(REMOVE_RECURSE
  "CMakeFiles/ablate_barrier.dir/ablate_barrier.cpp.o"
  "CMakeFiles/ablate_barrier.dir/ablate_barrier.cpp.o.d"
  "ablate_barrier"
  "ablate_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
