# Empty dependencies file for ablate_levelsync.
# This may be replaced when dependencies are built.
