file(REMOVE_RECURSE
  "CMakeFiles/ablate_levelsync.dir/ablate_levelsync.cpp.o"
  "CMakeFiles/ablate_levelsync.dir/ablate_levelsync.cpp.o.d"
  "ablate_levelsync"
  "ablate_levelsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_levelsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
