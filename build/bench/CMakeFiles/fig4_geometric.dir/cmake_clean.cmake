file(REMOVE_RECURSE
  "CMakeFiles/fig4_geometric.dir/fig4_geometric.cpp.o"
  "CMakeFiles/fig4_geometric.dir/fig4_geometric.cpp.o.d"
  "fig4_geometric"
  "fig4_geometric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
