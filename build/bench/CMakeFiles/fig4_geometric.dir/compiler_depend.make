# Empty compiler generated dependencies file for fig4_geometric.
# This may be replaced when dependencies are built.
