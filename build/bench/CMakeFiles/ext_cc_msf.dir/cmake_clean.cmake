file(REMOVE_RECURSE
  "CMakeFiles/ext_cc_msf.dir/ext_cc_msf.cpp.o"
  "CMakeFiles/ext_cc_msf.dir/ext_cc_msf.cpp.o.d"
  "ext_cc_msf"
  "ext_cc_msf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cc_msf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
