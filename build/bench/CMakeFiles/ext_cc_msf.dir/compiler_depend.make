# Empty compiler generated dependencies file for ext_cc_msf.
# This may be replaced when dependencies are built.
