file(REMOVE_RECURSE
  "CMakeFiles/ext_apps.dir/ext_apps.cpp.o"
  "CMakeFiles/ext_apps.dir/ext_apps.cpp.o.d"
  "ext_apps"
  "ext_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
