# Empty dependencies file for ext_apps.
# This may be replaced when dependencies are built.
