file(REMOVE_RECURSE
  "CMakeFiles/ablate_stub.dir/ablate_stub.cpp.o"
  "CMakeFiles/ablate_stub.dir/ablate_stub.cpp.o.d"
  "ablate_stub"
  "ablate_stub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_stub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
