# Empty dependencies file for ablate_stub.
# This may be replaced when dependencies are built.
