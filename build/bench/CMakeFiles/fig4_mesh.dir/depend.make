# Empty dependencies file for fig4_mesh.
# This may be replaced when dependencies are built.
