file(REMOVE_RECURSE
  "CMakeFiles/fig4_mesh.dir/fig4_mesh.cpp.o"
  "CMakeFiles/fig4_mesh.dir/fig4_mesh.cpp.o.d"
  "fig4_mesh"
  "fig4_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
