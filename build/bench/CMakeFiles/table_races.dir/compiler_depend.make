# Empty compiler generated dependencies file for table_races.
# This may be replaced when dependencies are built.
