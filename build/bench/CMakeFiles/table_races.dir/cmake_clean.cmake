file(REMOVE_RECURSE
  "CMakeFiles/table_races.dir/table_races.cpp.o"
  "CMakeFiles/table_races.dir/table_races.cpp.o.d"
  "table_races"
  "table_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
