# Empty compiler generated dependencies file for fig4_chain.
# This may be replaced when dependencies are built.
