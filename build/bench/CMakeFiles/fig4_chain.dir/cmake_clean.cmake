file(REMOVE_RECURSE
  "CMakeFiles/fig4_chain.dir/fig4_chain.cpp.o"
  "CMakeFiles/fig4_chain.dir/fig4_chain.cpp.o.d"
  "fig4_chain"
  "fig4_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
