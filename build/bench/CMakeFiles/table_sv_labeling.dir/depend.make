# Empty dependencies file for table_sv_labeling.
# This may be replaced when dependencies are built.
