file(REMOVE_RECURSE
  "CMakeFiles/table_sv_labeling.dir/table_sv_labeling.cpp.o"
  "CMakeFiles/table_sv_labeling.dir/table_sv_labeling.cpp.o.d"
  "table_sv_labeling"
  "table_sv_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sv_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
