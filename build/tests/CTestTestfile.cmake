# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_sequential_st[1]_include.cmake")
include("/root/repo/build/tests/test_bader_cong[1]_include.cmake")
include("/root/repo/build/tests/test_sv[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_msf[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_bench_util[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_algos[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_tarjan_vishkin[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_subgraph[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
