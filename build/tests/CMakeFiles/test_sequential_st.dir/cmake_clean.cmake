file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_st.dir/test_sequential_st.cpp.o"
  "CMakeFiles/test_sequential_st.dir/test_sequential_st.cpp.o.d"
  "test_sequential_st"
  "test_sequential_st.pdb"
  "test_sequential_st[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
