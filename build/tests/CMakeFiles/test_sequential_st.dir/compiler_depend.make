# Empty compiler generated dependencies file for test_sequential_st.
# This may be replaced when dependencies are built.
