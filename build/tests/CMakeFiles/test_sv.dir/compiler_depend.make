# Empty compiler generated dependencies file for test_sv.
# This may be replaced when dependencies are built.
