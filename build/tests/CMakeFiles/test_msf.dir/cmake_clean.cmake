file(REMOVE_RECURSE
  "CMakeFiles/test_msf.dir/test_msf.cpp.o"
  "CMakeFiles/test_msf.dir/test_msf.cpp.o.d"
  "test_msf"
  "test_msf.pdb"
  "test_msf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
