# Empty compiler generated dependencies file for test_msf.
# This may be replaced when dependencies are built.
