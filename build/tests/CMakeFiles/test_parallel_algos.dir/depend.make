# Empty dependencies file for test_parallel_algos.
# This may be replaced when dependencies are built.
