file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_algos.dir/test_parallel_algos.cpp.o"
  "CMakeFiles/test_parallel_algos.dir/test_parallel_algos.cpp.o.d"
  "test_parallel_algos"
  "test_parallel_algos.pdb"
  "test_parallel_algos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
