file(REMOVE_RECURSE
  "CMakeFiles/test_tarjan_vishkin.dir/test_tarjan_vishkin.cpp.o"
  "CMakeFiles/test_tarjan_vishkin.dir/test_tarjan_vishkin.cpp.o.d"
  "test_tarjan_vishkin"
  "test_tarjan_vishkin.pdb"
  "test_tarjan_vishkin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tarjan_vishkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
