# Empty compiler generated dependencies file for test_tarjan_vishkin.
# This may be replaced when dependencies are built.
