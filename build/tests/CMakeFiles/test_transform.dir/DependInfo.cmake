
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/test_transform.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/test_transform.dir/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/smpst_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_util/CMakeFiles/smpst_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/msf/CMakeFiles/smpst_msf.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/smpst_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/smpst_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/smpst_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smpst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/smpst_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smpst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/smpst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
