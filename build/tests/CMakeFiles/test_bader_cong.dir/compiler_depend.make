# Empty compiler generated dependencies file for test_bader_cong.
# This may be replaced when dependencies are built.
