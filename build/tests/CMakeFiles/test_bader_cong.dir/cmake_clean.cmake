file(REMOVE_RECURSE
  "CMakeFiles/test_bader_cong.dir/test_bader_cong.cpp.o"
  "CMakeFiles/test_bader_cong.dir/test_bader_cong.cpp.o.d"
  "test_bader_cong"
  "test_bader_cong.pdb"
  "test_bader_cong[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bader_cong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
