# Empty compiler generated dependencies file for mesh_connectivity.
# This may be replaced when dependencies are built.
