file(REMOVE_RECURSE
  "CMakeFiles/mesh_connectivity.dir/mesh_connectivity.cpp.o"
  "CMakeFiles/mesh_connectivity.dir/mesh_connectivity.cpp.o.d"
  "mesh_connectivity"
  "mesh_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
