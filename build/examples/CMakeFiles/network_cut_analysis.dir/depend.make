# Empty dependencies file for network_cut_analysis.
# This may be replaced when dependencies are built.
