file(REMOVE_RECURSE
  "CMakeFiles/network_cut_analysis.dir/network_cut_analysis.cpp.o"
  "CMakeFiles/network_cut_analysis.dir/network_cut_analysis.cpp.o.d"
  "network_cut_analysis"
  "network_cut_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_cut_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
