file(REMOVE_RECURSE
  "CMakeFiles/maze_generator.dir/maze_generator.cpp.o"
  "CMakeFiles/maze_generator.dir/maze_generator.cpp.o.d"
  "maze_generator"
  "maze_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maze_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
