# Empty compiler generated dependencies file for maze_generator.
# This may be replaced when dependencies are built.
