# Empty dependencies file for internet_topology.
# This may be replaced when dependencies are built.
