file(REMOVE_RECURSE
  "CMakeFiles/internet_topology.dir/internet_topology.cpp.o"
  "CMakeFiles/internet_topology.dir/internet_topology.cpp.o.d"
  "internet_topology"
  "internet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
