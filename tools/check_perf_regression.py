#!/usr/bin/env python3
"""check_perf_regression: gate a candidate BENCH_smpst.json against a baseline.

The committed baseline (BENCH_smpst.json at the repo root) records, per
(family, algo, p) cell, the median wall time and the speedup versus the
sequential-BFS baseline measured *on the same machine in the same run*.
Absolute medians are not comparable across machines, so the gate compares
machine-normalized quantities only:

  1. speedup ratio   — candidate.speedup_vs_seq_bfs must be at least
                       (1 - tolerance) * baseline.speedup_vs_seq_bfs for
                       every cell present in both documents.  Speedup is a
                       within-run ratio, so a uniformly slower CI machine
                       cancels out of both sides.
  2. direction sanity — within the candidate alone (same machine, same
                       run), the direction-optimizing column must not be
                       slower than the push-only column beyond the
                       tolerance:  median(parallel_bfs_dir) <=
                       (1 + tolerance) * median(parallel_bfs) per
                       (family, p).  This is the ISSUE acceptance criterion
                       "DO no slower than push-only on every family",
                       checked on every CI run rather than only when the
                       baseline was minted.

Config drift is a hard error, not a skipped comparison: if the candidate
was produced with a different n, seed, family list, or thread list than the
baseline, the ratios mean nothing and the gate refuses to pass them.

Exit codes: 0 = pass, 1 = regression found, 2 = config/document mismatch.

Usage:
  check_perf_regression.py --baseline BENCH_smpst.json \
      --candidate candidate.json [--tolerance 0.5] [--dir-tolerance 0.15]

Tolerance notes: timing noise on small shared CI machines is large, so the
speedup-ratio tolerance defaults to 0.5 (a cell must lose more than half
its baseline speedup to fail).  The intra-candidate direction check
compares two columns of the *same* run and is far less noisy; it gets its
own, tighter default.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ERROR: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def config_key(doc: dict) -> dict:
    cfg = doc.get("config", {})
    return {
        "n": cfg.get("n"),
        "seed": cfg.get("seed"),
        "threads": cfg.get("threads"),
        "families": sorted(cfg.get("families", [])),
    }


def cells(doc: dict) -> dict:
    """(family, algo, p) -> run dict."""
    out = {}
    for fam in doc.get("families", []):
        for run in fam.get("runs", []):
            out[(fam["family"], run["algo"], run["p"])] = run
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional loss of baseline speedup per cell "
        "(default 0.5: fail only below half the baseline speedup)",
    )
    ap.add_argument(
        "--dir-tolerance",
        type=float,
        default=0.15,
        help="allowed fractional slowdown of parallel_bfs_dir vs "
        "parallel_bfs within the candidate run (default 0.15)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    for doc, name in ((base, args.baseline), (cand, args.candidate)):
        if doc.get("benchmark") != "smpst.perf_suite":
            print(f"ERROR: {name} is not a perf_suite document",
                  file=sys.stderr)
            return 2

    bkey, ckey = config_key(base), config_key(cand)
    if bkey != ckey:
        print("ERROR: baseline/candidate config mismatch — the speedup "
              "ratios are not comparable:", file=sys.stderr)
        print(f"  baseline:  {bkey}", file=sys.stderr)
        print(f"  candidate: {ckey}", file=sys.stderr)
        return 2

    bcells, ccells = cells(base), cells(cand)
    failures = []
    compared = 0

    # 1. speedup-ratio gate over every cell present in both documents.
    for key, brun in sorted(bcells.items()):
        crun = ccells.get(key)
        if crun is None:
            failures.append(f"{key}: cell missing from candidate")
            continue
        floor = (1.0 - args.tolerance) * brun["speedup_vs_seq_bfs"]
        got = crun["speedup_vs_seq_bfs"]
        compared += 1
        if got < floor:
            failures.append(
                f"{key}: speedup {got:.3f} fell below floor {floor:.3f} "
                f"(baseline {brun['speedup_vs_seq_bfs']:.3f}, "
                f"tolerance {args.tolerance})")

    # 2. intra-candidate direction sanity: DO must not lose to push-only.
    dir_pairs = 0
    for (family, algo, p), push in sorted(ccells.items()):
        if algo != "parallel_bfs":
            continue
        do = ccells.get((family, "parallel_bfs_dir", p))
        if do is None:
            continue
        dir_pairs += 1
        push_med = push["timing"]["median_s"]
        do_med = do["timing"]["median_s"]
        ceiling = (1.0 + args.dir_tolerance) * push_med
        if do_med > ceiling:
            failures.append(
                f"({family}, p={p}): parallel_bfs_dir median {do_med:.6f}s "
                f"exceeds push-only {push_med:.6f}s by more than "
                f"{args.dir_tolerance:.0%}")

    print(f"compared {compared} baseline cells, "
          f"{dir_pairs} direction pairs in candidate")
    if failures:
        print(f"FAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("PASS: no perf regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
