#!/usr/bin/env python3
"""Fixture tests for tools/analyze/smpst_analyze.py.

Runs the analyzer over each file in tests/analyze_fixtures/ with
--scope fixture (so every check applies regardless of the fixture's path)
and asserts the exact multiset of rule IDs fired per fixture.  Each bad
fixture proves its SA check fires on a violated invariant; each good twin
proves the sanctioned idiom stays silent (wrappers, explicit orders,
rank-increasing nesting, allow-annotations, offloaded lambdas).

The real tree must then analyze clean — a finding in src/ is a regression.

Exit status 0 on success, 1 with a diff on any mismatch.
"""

from __future__ import annotations

import collections
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
ANALYZER = ROOT / "tools" / "analyze" / "smpst_analyze.py"
FIXTURES = ROOT / "tests" / "analyze_fixtures"

# fixture file -> expected multiset of rule IDs.
EXPECTED: dict[str, collections.Counter] = {
    "sa1_bad_plain_access.cpp": collections.Counter({"SA1": 4}),
    "sa1_good_wrapped.cpp": collections.Counter(),
    "sa2_bad_hidden_atomic.cpp": collections.Counter({"SA2": 5}),
    "sa2_good_explicit.cpp": collections.Counter(),
    "sa3_bad_inversion.cpp": collections.Counter({"SA3": 3}),
    "sa3_good_order.cpp": collections.Counter(),
    "sa4_bad_blocking.cpp": collections.Counter({"SA4": 6}),
    "sa4_good_offload.cpp": collections.Counter(),
}

FINDING_RE = re.compile(r"^(?P<path>.+):(?P<line>\d+): \[(?P<rule>SA\d+)\]")


def run_analyzer(args: list[str]) -> tuple[collections.Counter, int, str]:
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(ROOT)] + args,
        capture_output=True, text=True, check=False)
    got: collections.Counter = collections.Counter()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            got[m.group("rule")] += 1
    return got, proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    failures = []
    listed = {f.name for f in FIXTURES.iterdir()
              if f.suffix in (".cpp", ".hpp")}
    missing = listed - EXPECTED.keys()
    if missing:
        failures.append(f"fixtures without expectations: {sorted(missing)}")
    for name, want in sorted(EXPECTED.items()):
        fixture = FIXTURES / name
        if not fixture.exists():
            failures.append(f"{name}: fixture file missing")
            continue
        got, rc, output = run_analyzer(["--scope", "fixture", str(fixture)])
        if got != want:
            failures.append(
                f"{name}: expected {dict(want) or 'clean'}, "
                f"got {dict(got) or 'clean'}\n{output}")
            continue
        if want and rc == 0:
            failures.append(f"{name}: findings reported but exit status 0")
        elif not want and rc != 0:
            failures.append(f"{name}: clean but exit status {rc}\n{output}")
        else:
            label = (f"{sum(want.values())} finding(s)" if want else "clean")
            print(f"  ok   {name}: {label}")

    # The real tree must be clean — a finding in src/ is a regression.
    got, rc, output = run_analyzer([])
    if rc != 0:
        failures.append(f"src/ tree is not analyze-clean:\n{output}")
    else:
        print("  ok   src/ tree clean")

    if failures:
        print("\ntest_smpst_analyze FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"test_smpst_analyze: all {len(EXPECTED)} fixtures + tree scan "
          f"passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
