#!/usr/bin/env python3
"""Self-test for tools/check_perf_regression.py.

Builds synthetic baseline/candidate BENCH_smpst.json documents in a temp
directory and asserts the gate's three behaviours:

  * identical documents pass (exit 0);
  * an injected beyond-tolerance speedup loss fails (exit 1) and the
    offending cell is named;
  * a within-tolerance wobble passes;
  * a direction column slower than push-only beyond --dir-tolerance fails;
  * a config mismatch (different n / seed / families / threads) is a hard
    error (exit 2), not a silent pass.

This is the "gate demonstrably fails on an injected regression" acceptance
criterion, run on every ctest invocation instead of once by hand.

Exit status 0 on success, 1 with a message on any mismatch.
"""

from __future__ import annotations

import copy
import json
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "check_perf_regression.py"


def make_doc(*, n=16384, seed=24301, dir_median=0.004):
    """A minimal two-family perf_suite document."""

    def run(algo, p, median, speedup):
        return {
            "algo": algo,
            "p": p,
            "timing": {"median_s": median, "min_s": median,
                       "mean_s": median, "stddev_s": 0.0, "repetitions": 7},
            "speedup_vs_seq_bfs": speedup,
            "obs": {},
        }

    def family(name):
        return {
            "family": name,
            "n": n,
            "m": 4 * n,
            "components": 1,
            "seq_bfs": {"median_s": 0.005, "min_s": 0.005, "mean_s": 0.005,
                        "stddev_s": 0.0, "repetitions": 7},
            "runs": [
                run("bader_cong", 1, 0.006, 0.83),
                run("parallel_bfs", 1, 0.005, 1.0),
                run("parallel_bfs_dir", 1, dir_median, 0.005 / dir_median),
                run("sv", 1, 0.02, 0.25),
            ],
        }

    return {
        "schema_version": 2,
        "benchmark": "smpst.perf_suite",
        "generated_unix_ms": 0,
        "host": {"hardware_threads": 1, "numa_nodes": 1, "pinned": False,
                 "pin_failures": 0, "csr_interleaved": False},
        "config": {"n": n, "repeats": 7, "seed": seed, "failpoints": "",
                   "threads": [1], "families": ["random-nlogn", "chain-seq"]},
        "families": [family("random-nlogn"), family("chain-seq")],
    }


def run_checker(tmp, baseline, candidate, *extra):
    bpath = tmp / "baseline.json"
    cpath = tmp / "candidate.json"
    bpath.write_text(json.dumps(baseline))
    cpath.write_text(json.dumps(candidate))
    return subprocess.run(
        [sys.executable, str(CHECKER), "--baseline", str(bpath),
         "--candidate", str(cpath), *extra],
        capture_output=True, text=True, check=False)


def expect(cond, msg):
    if not cond:
        print(f"FAIL: {msg}")
        sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        base = make_doc()

        # Identical documents pass.
        proc = run_checker(tmp, base, copy.deepcopy(base))
        expect(proc.returncode == 0,
               f"identical docs should pass, got {proc.returncode}:\n"
               f"{proc.stdout}{proc.stderr}")

        # Injected beyond-tolerance regression fails and names the cell.
        slow = copy.deepcopy(base)
        cell = slow["families"][0]["runs"][0]  # random-nlogn bader_cong p=1
        cell["speedup_vs_seq_bfs"] *= 0.3  # lost 70% > default tolerance 0.5
        proc = run_checker(tmp, base, slow)
        expect(proc.returncode == 1,
               f"70% speedup loss should fail, got {proc.returncode}")
        expect("bader_cong" in proc.stdout and "random-nlogn" in proc.stdout,
               f"failure should name the cell:\n{proc.stdout}")

        # Within-tolerance wobble passes.
        wobble = copy.deepcopy(base)
        wobble["families"][0]["runs"][0]["speedup_vs_seq_bfs"] *= 0.8
        proc = run_checker(tmp, base, wobble)
        expect(proc.returncode == 0,
               f"20% wobble should pass, got {proc.returncode}:\n"
               f"{proc.stdout}")

        # Direction column slower than push beyond dir-tolerance fails,
        # even when its speedup stayed inside the (looser) speedup gate.
        dir_slow = copy.deepcopy(base)
        for fam in dir_slow["families"]:
            for run in fam["runs"]:
                if run["algo"] == "parallel_bfs_dir":
                    run["timing"]["median_s"] = 0.007  # push is 0.005
                    run["speedup_vs_seq_bfs"] = 0.005 / 0.007
        proc = run_checker(tmp, base, dir_slow)
        expect(proc.returncode == 1,
               f"DO 40% slower than push should fail, got {proc.returncode}")
        expect("parallel_bfs_dir" in proc.stdout,
               f"failure should name the direction pair:\n{proc.stdout}")

        # Config mismatch is a hard error.
        other = make_doc(seed=999)
        proc = run_checker(tmp, base, other)
        expect(proc.returncode == 2,
               f"seed mismatch should exit 2, got {proc.returncode}")
        expect("mismatch" in proc.stderr,
               f"mismatch should be explained:\n{proc.stderr}")

        # Missing cell in the candidate is a regression, not a skip.
        missing = copy.deepcopy(base)
        missing["families"][0]["runs"] = [
            r for r in missing["families"][0]["runs"]
            if r["algo"] != "bader_cong"
        ]
        proc = run_checker(tmp, base, missing)
        expect(proc.returncode == 1,
               f"missing cell should fail, got {proc.returncode}")

    print("PASS: check_perf_regression self-test")
    return 0


if __name__ == "__main__":
    sys.exit(main())
