// smpst_serve — line-protocol front end of the spanning-tree query service.
//
// Two transports share one command dispatcher (service/session.hpp):
//
//   default      read requests from stdin, write responses to stdout
//   --tcp        serve the same protocol over TCP (src/net/tcp_server.hpp):
//                nonblocking epoll loop, bounded buffers, admission control,
//                idle/write-stall timeouts, graceful drain
//
// One request per line (flat JSON or "cmd key=value ..."), one JSON response
// per line. Commands:
//
//   load name=g1 path=graph.bin          register a graph from disk
//   gen name=g1 family=random-nlogn n=65536 [seed=1]
//                                        synthesize a generator family
//   query graph=g1 [algo=bader-cong] [root=0] [timeout=50] [seed=1]
//         [validate=true] [stats=true]  spanning-tree query ("algorithm" and
//                                       "timeout_ms" are accepted aliases)
//   batch count=K                        submit the next K query lines
//                                        as one atomically-admitted batch
//   stats                                service + registry counters, tail
//                                        latency percentiles
//   metrics                              process-wide MetricsRegistry dump
//                                        (counters, gauges, histograms)
//   trace file=out.json                  drain the trace buffers to a Chrome
//                                        trace_event file (about:tracing /
//                                        Perfetto); enables tracing if it is
//                                        off so later drains see new events
//   list                                 resident graphs, MRU first
//   evict name=g1                        drop a graph from the registry
//   shutdown                             begin a graceful drain
//   quit                                 drain and exit
//
// Error responses are typed ({"ok":false,"code":"overloaded",...}); see
// docs/SERVICE.md for the overload/shed/drain contract.
//
// SIGINT/SIGTERM begin the same graceful drain the `shutdown` command does:
// stop taking input, complete and answer every accepted request, then exit.
// Exit codes: 0 clean, 1 startup error, 3 drain deadline exceeded with
// responses still owed.
//
// Example session:
//   $ build/tools/smpst_serve --workers=2
//   gen name=g family=torus-rowmajor n=16384
//   {"ok":true,"name":"g","vertices":16384,...}
//   query graph=g algo=bader-cong validate=1
//   {"status":"ok","graph":"g",...}
//
// SMPST_TRACE=<file> in the environment enables tracing before main() and
// writes the Chrome trace at exit (docs/OBSERVABILITY.md).
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include <unistd.h>

#include "bench_util/cli.hpp"
#include "net/tcp_server.hpp"
#include "obs/trace.hpp"
#include "service/codec.hpp"
#include "service/executor.hpp"
#include "service/session.hpp"
#include "service/wire.hpp"
#include "support/thread_annotations.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

constexpr int kExitDrainTimedOut = 3;

std::atomic<net::TcpServer*> g_server{nullptr};
std::atomic<bool> g_stop{false};

void on_signal(int) {
  // Async-signal-safe: atomic stores plus TcpServer's eventfd write.
  g_stop.store(true, std::memory_order_release);
  if (net::TcpServer* server = g_server.load(std::memory_order_acquire)) {
    server->request_shutdown();
  }
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read must see EINTR
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
  (void)std::signal(SIGPIPE, SIG_IGN);  // surfaced as EPIPE instead
}

int serve_stdin(GraphRegistry& registry, QueryExecutor& executor,
                std::int64_t drain_timeout_ms) {
  // Executor workers and the reader thread interleave on stdout; the mutex
  // keeps response lines whole.
  Mutex out_mutex;
  auto session = Session::create(
      registry, executor, [&out_mutex](std::string&& line) {
        LockGuard<Mutex> lk(out_mutex);
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fflush(stdout);
      });

  LineCodec codec;
  char buf[1 << 16];
  bool eof = false;
  while (!eof && !g_stop.load(std::memory_order_acquire) &&
         !session->quit_requested()) {
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // the loop condition re-checks g_stop
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    codec.feed(buf, static_cast<std::size_t>(n));
    std::string line;
    while (!session->quit_requested()) {
      const LineCodec::Event ev = codec.next(line);
      if (ev == LineCodec::Event::kNone) break;
      if (ev == LineCodec::Event::kOversized) {
        session->on_oversized_line(codec.last_oversized_bytes());
      } else {
        session->on_line(std::move(line));
      }
    }
  }
  if (eof) {
    // getline semantics for a final unterminated line.
    std::string tail = codec.take_partial();
    if (!tail.empty()) session->on_line(std::move(tail));
  }
  // Signal, EOF and quit all drain the same way: a half-collected batch is
  // finalized (truncation errors + admission of what was collected), every
  // accepted query completes and is answered, and only then do we exit.
  session->on_eof();
  if (!session->wait_idle(std::chrono::milliseconds(drain_timeout_ms))) {
    std::cerr << "smpst_serve: drain timed out with " << session->pending()
              << " responses outstanding\n";
    return kExitDrainTimedOut;
  }
  return 0;
}

int serve_tcp(GraphRegistry& registry, QueryExecutor& executor,
              net::TcpServerOptions net_opts, const std::string& port_file) {
  net::TcpServer server(registry, executor, std::move(net_opts));
  g_server.store(&server, std::memory_order_release);
  if (g_stop.load(std::memory_order_acquire)) {
    // A signal raced server construction; honor it.
    server.request_shutdown();
  }
  {
    JsonWriter w;
    w.field("ok", true);
    w.field("listening", true);
    w.field("port", static_cast<std::uint64_t>(server.port()));
    std::cout << w.str() << "\n" << std::flush;
  }
  if (!port_file.empty()) {
    // Shell-friendly discovery of an ephemeral port (tests, CI).
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }
  const net::DrainReport report = server.run();
  g_server.store(nullptr, std::memory_order_release);
  if (!report.clean) {
    std::cerr << "smpst_serve: drain deadline forced "
              << report.forced_connections << " connections, dropping "
              << report.responses_dropped << " pending responses\n";
    return kExitDrainTimedOut;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  GraphRegistry::Options reg_opts;
  reg_opts.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_int("registry-budget-mb", 0)) << 20;
  ExecutorOptions exec_opts;
  exec_opts.num_workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  exec_opts.threads_per_query =
      static_cast<std::size_t>(cli.get_int("threads-per-query", 0));
  exec_opts.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 64));

  const bool tcp = cli.get_bool("tcp", false);
  net::TcpServerOptions net_opts;
  net_opts.bind_address = cli.get_string("bind", net_opts.bind_address);
  net_opts.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  net_opts.max_connections = static_cast<std::size_t>(
      cli.get_int("max-connections",
                  static_cast<std::int64_t>(net_opts.max_connections)));
  net_opts.max_pipeline = static_cast<std::size_t>(cli.get_int(
      "max-pipeline", static_cast<std::int64_t>(net_opts.max_pipeline)));
  net_opts.idle_timeout_ms =
      cli.get_int("idle-timeout-ms", net_opts.idle_timeout_ms);
  net_opts.write_stall_timeout_ms =
      cli.get_int("write-stall-timeout-ms", net_opts.write_stall_timeout_ms);
  net_opts.drain_timeout_ms =
      cli.get_int("drain-timeout-ms", net_opts.drain_timeout_ms);
  const std::string port_file = cli.get_string("port-file", "");
  cli.reject_unknown();

  smpst::obs::trace::label_current_thread("main");
  install_signal_handlers();
  GraphRegistry registry(reg_opts);
  QueryExecutor executor(registry, exec_opts);
  return tcp ? serve_tcp(registry, executor, std::move(net_opts), port_file)
             : serve_stdin(registry, executor, net_opts.drain_timeout_ms);
} catch (const std::exception& e) {
  std::cerr << "smpst_serve: " << e.what() << "\n";
  return 1;
}
