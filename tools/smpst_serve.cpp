// smpst_serve — line-protocol front end of the spanning-tree query service.
//
// Reads one request per line from stdin (flat JSON or "cmd key=value ..."),
// writes one JSON response per line to stdout. Commands:
//
//   load name=g1 path=graph.bin          register a graph from disk
//   gen name=g1 family=random-nlogn n=65536 [seed=1]
//                                        synthesize a generator family
//   query graph=g1 [algo=bader-cong] [root=0] [timeout=50] [seed=1]
//         [validate=true] [stats=true]  spanning-tree query ("algorithm" and
//                                       "timeout_ms" are accepted aliases)
//   batch count=K                        submit the next K query lines
//                                        as one atomically-admitted batch
//   stats                                service + registry counters, tail
//                                        latency percentiles
//   metrics                              process-wide MetricsRegistry dump
//                                        (counters, gauges, histograms)
//   trace file=out.json                  drain the trace buffers to a Chrome
//                                        trace_event file (about:tracing /
//                                        Perfetto); enables tracing if it is
//                                        off so later drains see new events
//   list                                 resident graphs, MRU first
//   evict name=g1                        drop a graph from the registry
//   quit                                 drain and exit
//
// Example session:
//   $ build/tools/smpst_serve --workers=2
//   gen name=g family=torus-rowmajor n=16384
//   {"ok":true,"name":"g","vertices":16384,...}
//   query graph=g algo=bader-cong validate=1
//   {"status":"ok","graph":"g",...}
//
// SMPST_TRACE=<file> in the environment enables tracing before main() and
// writes the Chrome trace at exit (docs/OBSERVABILITY.md).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/cli.hpp"
#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/executor.hpp"
#include "service/wire.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

std::string get(const Fields& f, const std::string& key,
                const std::string& fallback) {
  const auto it = f.find(key);
  return it == f.end() ? fallback : it->second;
}

std::int64_t get_int(const Fields& f, const std::string& key,
                     std::int64_t fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
  }
  if (consumed != it->second.size()) {
    throw std::invalid_argument(key + " must be an integer, got: " +
                                it->second);
  }
  return value;
}

bool get_bool(const Fields& f, const std::string& key, bool fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument(key + " must be a boolean, got: " + it->second);
}

std::string require(const Fields& f, const std::string& key) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) {
    throw std::invalid_argument("missing required field: " + key);
  }
  return it->second;
}

SpanningTreeRequest request_from(const Fields& f) {
  // A typo in a field name must not silently drop (say) the timeout: reject
  // anything we would otherwise ignore.
  static const char* const known[] = {"cmd",     "graph",      "algo",
                                      "algorithm", "root",     "timeout",
                                      "timeout_ms", "seed",    "validate",
                                      "stats"};
  for (const auto& [key, value] : f) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) throw std::invalid_argument("unknown query field: " + key);
  }
  SpanningTreeRequest req;
  req.graph = require(f, "graph");
  req.algorithm = get(f, "algo", get(f, "algorithm", "bader-cong"));
  if (f.count("root") != 0) {
    // Validate before the narrowing cast: root=-1 would otherwise wrap to
    // kInvalidVertex and silently mean "default root".
    const std::int64_t root = get_int(f, "root", 0);
    if (root < 0 || root >= static_cast<std::int64_t>(kInvalidVertex)) {
      throw std::invalid_argument("root out of range: " +
                                  std::to_string(root));
    }
    req.root = static_cast<VertexId>(root);
  } else {
    req.root = kInvalidVertex;
  }
  req.seed = static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed));
  req.timeout_ms = get_int(f, "timeout", get_int(f, "timeout_ms", -1));
  req.validate = get_bool(f, "validate", false);
  req.want_stats = get_bool(f, "stats", false);
  return req;
}

std::string describe(const GraphRegistry::EntryInfo& e) {
  JsonWriter w;
  w.field("name", e.name);
  w.field("vertices", static_cast<std::uint64_t>(e.vertices));
  w.field("edges", e.edges);
  w.field("bytes", static_cast<std::uint64_t>(e.bytes));
  return w.str();
}

int serve(GraphRegistry& registry, QueryExecutor& executor) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      const Fields f = parse_line(line);
      const std::string cmd = require(f, "cmd");
      if (cmd == "quit" || cmd == "exit") {
        std::cout << JsonWriter().field("ok", true).field("bye", true).str()
                  << "\n";
        return 0;
      }
      if (cmd == "load" || cmd == "gen") {
        const std::string name = require(f, "name");
        std::shared_ptr<const Graph> graph;
        if (cmd == "load") {
          graph = registry.load_file(name, require(f, "path"));
        } else {
          const std::int64_t n = get_int(f, "n", 1 << 16);
          if (n < 0 || n >= static_cast<std::int64_t>(kInvalidVertex)) {
            throw std::invalid_argument("n out of range: " +
                                        std::to_string(n));
          }
          graph = registry.generate(
              name, require(f, "family"), static_cast<VertexId>(n),
              static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed)));
        }
        JsonWriter w;
        w.field("ok", true);
        w.field("name", name);
        w.field("vertices", static_cast<std::uint64_t>(graph->num_vertices()));
        w.field("edges", graph->num_edges());
        w.field("bytes", static_cast<std::uint64_t>(graph->memory_bytes()));
        std::cout << w.str() << "\n";
      } else if (cmd == "query") {
        std::cout << render_result(executor.submit(request_from(f)).get())
                  << "\n";
      } else if (cmd == "batch") {
        const auto count = get_int(f, "count", 0);
        if (count <= 0) throw std::invalid_argument("batch needs count>=1");
        if (count > 4096) {
          throw std::invalid_argument("batch count too large (max 4096)");
        }
        // Exactly one response line per announced query line, in order, no
        // matter what: a sub-line that fails to parse gets an error line and
        // the remaining valid lines are still admitted as one batch.
        // Replying with fewer lines than the client announced would leave it
        // blocked waiting for the remainder.
        std::vector<std::string> responses(static_cast<std::size_t>(count));
        std::vector<SpanningTreeRequest> reqs;
        std::vector<std::size_t> req_pos;  // batch position of reqs[i]
        std::string sub;
        for (std::int64_t i = 0; i < count; ++i) {
          const auto pos = static_cast<std::size_t>(i);
          if (!std::getline(std::cin, sub)) {
            for (std::int64_t j = i; j < count; ++j) {
              responses[static_cast<std::size_t>(j)] =
                  JsonWriter()
                      .field("ok", false)
                      .field("error", "batch truncated by end of input")
                      .str();
            }
            break;
          }
          try {
            reqs.push_back(request_from(parse_line(sub)));
            req_pos.push_back(pos);
          } catch (const std::exception& e) {
            responses[pos] = JsonWriter()
                                 .field("ok", false)
                                 .field("error", e.what())
                                 .str();
          }
        }
        auto futures = executor.submit_batch(std::move(reqs));
        for (std::size_t i = 0; i < futures.size(); ++i) {
          responses[req_pos[i]] = render_result(futures[i].get());
        }
        for (const auto& r : responses) std::cout << r << "\n";
      } else if (cmd == "stats") {
        std::cout << render_stats(executor.stats()) << "\n";
      } else if (cmd == "metrics") {
        std::cout << render_metrics(obs::MetricsRegistry::instance().snapshot())
                  << "\n";
      } else if (cmd == "trace") {
        const std::string path = require(f, "file");
        // First use turns tracing on, so a session can ask for a trace
        // without restarting under SMPST_TRACE; this drain is then empty and
        // the next one covers the load that follows.
        if (!obs::trace::enabled()) obs::trace::enable();
        std::size_t events = 0;
        const bool ok = obs::trace::write_chrome_trace_file(path, &events);
        JsonWriter w;
        w.field("ok", ok);
        w.field("file", path);
        w.field("events", static_cast<std::uint64_t>(events));
        std::cout << w.str() << "\n";
      } else if (cmd == "list") {
        for (const auto& e : registry.list()) {
          std::cout << describe(e) << "\n";
        }
        std::cout << JsonWriter()
                         .field("ok", true)
                         .field("entries", static_cast<std::uint64_t>(
                                               registry.list().size()))
                         .str()
                  << "\n";
      } else if (cmd == "evict") {
        std::cout << JsonWriter()
                         .field("ok", registry.evict(require(f, "name")))
                         .str()
                  << "\n";
      } else {
        throw std::invalid_argument("unknown command: " + cmd);
      }
    } catch (const std::exception& e) {
      std::cout << JsonWriter()
                       .field("ok", false)
                       .field("error", e.what())
                       .str()
                << "\n";
    } catch (...) {
      // A request must never take the server down, whatever it threw.
      std::cout << JsonWriter()
                       .field("ok", false)
                       .field("error", "unknown exception")
                       .str()
                << "\n";
    }
    std::cout.flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  GraphRegistry::Options reg_opts;
  reg_opts.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_int("registry-budget-mb", 0)) << 20;
  ExecutorOptions exec_opts;
  exec_opts.num_workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  exec_opts.threads_per_query =
      static_cast<std::size_t>(cli.get_int("threads-per-query", 0));
  exec_opts.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 64));
  cli.reject_unknown();

  smpst::obs::trace::label_current_thread("main");
  GraphRegistry registry(reg_opts);
  QueryExecutor executor(registry, exec_opts);
  return serve(registry, executor);
} catch (const std::exception& e) {
  std::cerr << "smpst_serve: " << e.what() << "\n";
  return 1;
}
