// smpst_serve — line-protocol front end of the spanning-tree query service.
//
// Reads one request per line from stdin (flat JSON or "cmd key=value ..."),
// writes one JSON response per line to stdout. Commands:
//
//   load name=g1 path=graph.bin          register a graph from disk
//   gen name=g1 family=random-nlogn n=65536 [seed=1]
//                                        synthesize a generator family
//   query graph=g1 [algo=bader-cong] [root=0] [timeout=50] [seed=1]
//         [validate=true] [stats=true]  spanning-tree query ("algorithm" and
//                                       "timeout_ms" are accepted aliases)
//   batch count=K                        submit the next K query lines
//                                        as one atomically-admitted batch
//   stats                                service + registry counters, tail
//                                        latency percentiles
//   list                                 resident graphs, MRU first
//   evict name=g1                        drop a graph from the registry
//   quit                                 drain and exit
//
// Example session:
//   $ build/tools/smpst_serve --workers=2
//   gen name=g family=torus-rowmajor n=16384
//   {"ok":true,"name":"g","vertices":16384,...}
//   query graph=g algo=bader-cong validate=1
//   {"status":"ok","graph":"g",...}
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/cli.hpp"
#include "core/algorithms.hpp"
#include "gen/registry.hpp"
#include "service/executor.hpp"
#include "service/wire.hpp"

namespace {

using namespace smpst;
using namespace smpst::service;

std::string get(const Fields& f, const std::string& key,
                const std::string& fallback) {
  const auto it = f.find(key);
  return it == f.end() ? fallback : it->second;
}

std::int64_t get_int(const Fields& f, const std::string& key,
                     std::int64_t fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
  }
  if (consumed != it->second.size()) {
    throw std::invalid_argument(key + " must be an integer, got: " +
                                it->second);
  }
  return value;
}

bool get_bool(const Fields& f, const std::string& key, bool fallback) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument(key + " must be a boolean, got: " + it->second);
}

std::string require(const Fields& f, const std::string& key) {
  const auto it = f.find(key);
  if (it == f.end() || it->second.empty()) {
    throw std::invalid_argument("missing required field: " + key);
  }
  return it->second;
}

SpanningTreeRequest request_from(const Fields& f) {
  // A typo in a field name must not silently drop (say) the timeout: reject
  // anything we would otherwise ignore.
  static const char* const known[] = {"cmd",     "graph",      "algo",
                                      "algorithm", "root",     "timeout",
                                      "timeout_ms", "seed",    "validate",
                                      "stats"};
  for (const auto& [key, value] : f) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) throw std::invalid_argument("unknown query field: " + key);
  }
  SpanningTreeRequest req;
  req.graph = require(f, "graph");
  req.algorithm = get(f, "algo", get(f, "algorithm", "bader-cong"));
  if (f.count("root") != 0) {
    // Validate before the narrowing cast: root=-1 would otherwise wrap to
    // kInvalidVertex and silently mean "default root".
    const std::int64_t root = get_int(f, "root", 0);
    if (root < 0 || root >= static_cast<std::int64_t>(kInvalidVertex)) {
      throw std::invalid_argument("root out of range: " +
                                  std::to_string(root));
    }
    req.root = static_cast<VertexId>(root);
  } else {
    req.root = kInvalidVertex;
  }
  req.seed = static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed));
  req.timeout_ms = get_int(f, "timeout", get_int(f, "timeout_ms", -1));
  req.validate = get_bool(f, "validate", false);
  req.want_stats = get_bool(f, "stats", false);
  return req;
}

std::string render_result(const QueryResult& r) {
  JsonWriter w;
  w.field("status", to_string(r.status));
  w.field("graph", r.graph);
  w.field("algo", r.algorithm);
  if (!r.error.empty()) w.field("error", r.error);
  if (r.forest.num_vertices() > 0) {
    w.field("vertices", static_cast<std::uint64_t>(r.forest.num_vertices()));
    w.field("trees", static_cast<std::uint64_t>(r.num_trees));
  }
  if (r.validated) w.field("valid", r.validation.ok);
  // Robustness telemetry, emitted only when something unusual happened so
  // the common-case response shape stays unchanged.
  if (r.attempts > 1) {
    w.field("attempts", static_cast<std::uint64_t>(r.attempts));
  }
  if (r.degraded) w.field("degraded", true);
  if (r.watchdog_cancelled) w.field("watchdog_cancelled", true);
  if (r.stats.per_thread.size() > 0) {
    w.field("load_imbalance", r.stats.load_imbalance());
    w.field("steals", r.stats.total_steals());
    w.field("duplicate_expansions", r.stats.duplicate_expansions);
  }
  w.field("queue_ms", r.queue_ms);
  w.field("exec_ms", r.exec_ms);
  w.field("total_ms", r.total_ms);
  return w.str();
}

std::string render_stats(const ServiceStats& s) {
  JsonWriter w;
  w.field("submitted", s.submitted);
  w.field("accepted", s.accepted);
  w.field("rejected", s.rejected);
  w.field("served_ok", s.served_ok);
  w.field("timed_out", s.timed_out);
  w.field("not_found", s.not_found);
  w.field("failed", s.failed);
  w.field("invalid", s.invalid);
  w.field("retries", s.retries);
  w.field("degraded", s.degraded);
  w.field("watchdog_cancels", s.watchdog_cancels);
  w.field("latency_count", s.latency.count);
  w.field("latency_mean_ms", s.latency.mean_ms);
  w.field("latency_p50_ms", s.latency.percentile(50));
  w.field("latency_p95_ms", s.latency.percentile(95));
  w.field("latency_p99_ms", s.latency.percentile(99));
  w.field("registry_entries", static_cast<std::uint64_t>(s.registry.entries));
  w.field("registry_bytes",
          static_cast<std::uint64_t>(s.registry.resident_bytes));
  w.field("registry_hit_rate", s.registry.hit_rate());
  w.field("registry_evictions", s.registry.evictions);
  return w.str();
}

std::string describe(const GraphRegistry::EntryInfo& e) {
  JsonWriter w;
  w.field("name", e.name);
  w.field("vertices", static_cast<std::uint64_t>(e.vertices));
  w.field("edges", e.edges);
  w.field("bytes", static_cast<std::uint64_t>(e.bytes));
  return w.str();
}

int serve(GraphRegistry& registry, QueryExecutor& executor) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      const Fields f = parse_line(line);
      const std::string cmd = require(f, "cmd");
      if (cmd == "quit" || cmd == "exit") {
        std::cout << JsonWriter().field("ok", true).field("bye", true).str()
                  << "\n";
        return 0;
      }
      if (cmd == "load" || cmd == "gen") {
        const std::string name = require(f, "name");
        std::shared_ptr<const Graph> graph;
        if (cmd == "load") {
          graph = registry.load_file(name, require(f, "path"));
        } else {
          const std::int64_t n = get_int(f, "n", 1 << 16);
          if (n < 0 || n >= static_cast<std::int64_t>(kInvalidVertex)) {
            throw std::invalid_argument("n out of range: " +
                                        std::to_string(n));
          }
          graph = registry.generate(
              name, require(f, "family"), static_cast<VertexId>(n),
              static_cast<std::uint64_t>(get_int(f, "seed", 0x5eed)));
        }
        JsonWriter w;
        w.field("ok", true);
        w.field("name", name);
        w.field("vertices", static_cast<std::uint64_t>(graph->num_vertices()));
        w.field("edges", graph->num_edges());
        w.field("bytes", static_cast<std::uint64_t>(graph->memory_bytes()));
        std::cout << w.str() << "\n";
      } else if (cmd == "query") {
        std::cout << render_result(executor.submit(request_from(f)).get())
                  << "\n";
      } else if (cmd == "batch") {
        const auto count = get_int(f, "count", 0);
        if (count <= 0) throw std::invalid_argument("batch needs count>=1");
        if (count > 4096) {
          throw std::invalid_argument("batch count too large (max 4096)");
        }
        // Exactly one response line per announced query line, in order, no
        // matter what: a sub-line that fails to parse gets an error line and
        // the remaining valid lines are still admitted as one batch.
        // Replying with fewer lines than the client announced would leave it
        // blocked waiting for the remainder.
        std::vector<std::string> responses(static_cast<std::size_t>(count));
        std::vector<SpanningTreeRequest> reqs;
        std::vector<std::size_t> req_pos;  // batch position of reqs[i]
        std::string sub;
        for (std::int64_t i = 0; i < count; ++i) {
          const auto pos = static_cast<std::size_t>(i);
          if (!std::getline(std::cin, sub)) {
            for (std::int64_t j = i; j < count; ++j) {
              responses[static_cast<std::size_t>(j)] =
                  JsonWriter()
                      .field("ok", false)
                      .field("error", "batch truncated by end of input")
                      .str();
            }
            break;
          }
          try {
            reqs.push_back(request_from(parse_line(sub)));
            req_pos.push_back(pos);
          } catch (const std::exception& e) {
            responses[pos] = JsonWriter()
                                 .field("ok", false)
                                 .field("error", e.what())
                                 .str();
          }
        }
        auto futures = executor.submit_batch(std::move(reqs));
        for (std::size_t i = 0; i < futures.size(); ++i) {
          responses[req_pos[i]] = render_result(futures[i].get());
        }
        for (const auto& r : responses) std::cout << r << "\n";
      } else if (cmd == "stats") {
        std::cout << render_stats(executor.stats()) << "\n";
      } else if (cmd == "list") {
        for (const auto& e : registry.list()) {
          std::cout << describe(e) << "\n";
        }
        std::cout << JsonWriter()
                         .field("ok", true)
                         .field("entries", static_cast<std::uint64_t>(
                                               registry.list().size()))
                         .str()
                  << "\n";
      } else if (cmd == "evict") {
        std::cout << JsonWriter()
                         .field("ok", registry.evict(require(f, "name")))
                         .str()
                  << "\n";
      } else {
        throw std::invalid_argument("unknown command: " + cmd);
      }
    } catch (const std::exception& e) {
      std::cout << JsonWriter()
                       .field("ok", false)
                       .field("error", e.what())
                       .str()
                << "\n";
    } catch (...) {
      // A request must never take the server down, whatever it threw.
      std::cout << JsonWriter()
                       .field("ok", false)
                       .field("error", "unknown exception")
                       .str()
                << "\n";
    }
    std::cout.flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::Cli cli(argc, argv);
  GraphRegistry::Options reg_opts;
  reg_opts.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_int("registry-budget-mb", 0)) << 20;
  ExecutorOptions exec_opts;
  exec_opts.num_workers = static_cast<std::size_t>(cli.get_int("workers", 2));
  exec_opts.threads_per_query =
      static_cast<std::size_t>(cli.get_int("threads-per-query", 0));
  exec_opts.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 64));
  cli.reject_unknown();

  GraphRegistry registry(reg_opts);
  QueryExecutor executor(registry, exec_opts);
  return serve(registry, executor);
} catch (const std::exception& e) {
  std::cerr << "smpst_serve: " << e.what() << "\n";
  return 1;
}
