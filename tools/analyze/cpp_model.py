"""cpp_model: a small semantic model of the smpst C++ sources.

This is the engine behind tools/analyze/smpst_analyze.py.  It is NOT a C++
parser — it is a purpose-built extractor that understands exactly as much of
the language as the SA1–SA4 checks need:

  * comment/string stripping that preserves byte positions (so every span in
    the model maps 1:1 onto the raw file for line numbers),
  * the scope tree: namespaces, classes/structs, functions (including
    out-of-line `Class::method` definitions and constructors with init
    lists), and lambdas — each lambda is modelled as a separate anonymous
    function so that deferred callbacks (executor submissions, pool workers)
    are NOT treated as synchronous calls of the enclosing function,
  * per-class member tables (name -> declared type + initializer text),
    `using` aliases, and method sets,
  * per-function facts: parameter/local type environments, reference
    aliases, call sites with receiver chains, and lock acquisition events
    with their guard scopes,
  * a type resolver that peels smart pointers / containers and follows
    `using` aliases, enough to turn `c.session->on_line(...)` into
    `smpst::service::Session::on_line`.

Heuristics are deliberately conservative: anything the model cannot resolve
is dropped (and can be supplied by a `// smpst-analyze: calls(...)` or
`acquires(...)` annotation) rather than guessed at.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field

# --------------------------------------------------------------- stripping --

_RAW_STRING_RE = re.compile(r'R"([^\s()\\]{0,16})\(')


def strip_preserving(text: str) -> str:
    """Blank comments and string/char literal *contents* with spaces, keeping
    every byte position (and therefore every line/column) identical to the
    raw text."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
            if i + 1 < n:
                out[i + 1] = " "
            i += 2
        elif c == "R" and nxt == '"':
            m = _RAW_STRING_RE.match(text, i)
            if not m:
                out[i] = " "
                i += 1
                continue
            delim = ")" + m.group(1) + '"'
            end = text.find(delim, m.end())
            end = (end + len(delim)) if end != -1 else n
            for j in range(i, min(end, n)):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        elif c == '"' or c == "'":
            # Not a literal when ' follows an identifier/digit: C++14 digit
            # separators (30'000) and literal suffixes.
            if c == "'" and i > 0 and (text[i - 1].isalnum()
                                       or text[i - 1] == "_"):
                i += 1
                continue
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if text[i] != "\n":
                        out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# ------------------------------------------------------------- annotations --

ANNOTATION_RE = re.compile(
    r"//\s*smpst-analyze:\s*(?P<kind>allow|acquires|calls)\s*"
    r"\((?P<args>[^)]*)\)\s*(?::\s*(?P<reason>.*))?")


@dataclass
class Annotation:
    kind: str          # allow | acquires | calls
    args: list[str]
    reason: str
    line: int


def parse_annotations(raw: str) -> dict[int, list[Annotation]]:
    anns: dict[int, list[Annotation]] = {}
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = ANNOTATION_RE.search(line)
        if not m:
            continue
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        anns.setdefault(lineno, []).append(Annotation(
            m.group("kind"), args, (m.group("reason") or "").strip(), lineno))
    return anns


# ------------------------------------------------------------------ model --

@dataclass
class Member:
    name: str
    type_str: str
    init: str          # brace- or =-initializer text ("" when none)
    line: int


@dataclass
class Klass:
    qname: str                       # e.g. smpst::service::Session
    basename: str
    file: str
    line: int
    start: int                       # body span in the stripped text
    end: int
    members: dict[str, Member] = field(default_factory=dict)
    usings: dict[str, str] = field(default_factory=dict)
    methods: set[str] = field(default_factory=set)   # declared or defined


@dataclass
class CallSite:
    pos: int                         # position in the FILE's stripped text
    chain: list[str]                 # receiver components, [] for free calls
    quals: str                       # explicit :: qualifier text ("" if none)
    name: str
    line: int


@dataclass
class LockEvent:
    pos: int
    kind: str                        # guard | lock | unlock | try_lock
    mutex_expr: str                  # source expression of the mutex
    scope_end: int                   # guards: end of the enclosing brace scope
    line: int


@dataclass
class Function:
    qname: str                       # smpst::net::TcpServer::run, or
    #                                  <lambda@file:line> for lambdas
    basename: str
    klass: str | None                # qualified class name for methods
    file: str
    line: int
    head: str                        # signature text
    start: int                       # body span (inside the braces)
    end: int
    kind: str = "function"           # function | lambda
    passed_to: str | None = None     # lambdas: callee name it was passed to
    passed_recv: str | None = None   # lambdas: receiver chain of that callee
    own_ranges: list[tuple[int, int]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    locks: list[LockEvent] = field(default_factory=list)
    params: dict[str, str] = field(default_factory=dict)
    locals: dict[str, str] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)  # ref name -> expr
    lambdas: list["Function"] = field(default_factory=list)

    def own_text(self, code: str) -> str:
        """Body text with nested lambda bodies blanked (positions kept)."""
        buf = list(code[self.start:self.end])
        base = self.start
        for lam in self.lambdas:
            for j in range(lam.start - base, lam.end - base):
                if buf[j] != "\n":
                    buf[j] = " "
        return "".join(buf)


@dataclass
class SourceFile:
    path: pathlib.Path
    rel: str
    raw: str
    code: str                        # stripped, position-preserving
    annotations: dict[int, list[Annotation]]
    classes: list[Klass] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    usings: dict[str, str] = field(default_factory=dict)   # file-scope


# -------------------------------------------------------------- the parser --

_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                     "do", "else", "sizeof", "alignof", "decltype",
                     "static_assert", "new", "delete", "throw",
                     "alignas", "noexcept", "assert"}

_NS_RE = re.compile(r"\bnamespace\s*([\w:]*)\s*$")
_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SMPST_[A-Z_]+(?:\(\s*\w*\s*\))?\s+)?"
    r"(?P<name>\w+)\s*(?:final\s*)?(?::\s*[^{]*)?$")
_ENUM_RE = re.compile(r"\benum\b")
_LAMBDA_TAIL_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^{}]*\))?\s*(?:mutable\s*)?(?:constexpr\s*)?"
    r"(?:noexcept\s*(?:\([^()]*\))?)?\s*(?:->\s*[^{]+?)?\s*$")
_LAMBDA_PASSED_RE = re.compile(
    r"(?P<chain>(?:\w+(?:\[[^\]]*\])?\s*(?:\.|->)\s*|\w+\s*::\s*)*)"
    r"(?P<callee>\w+)\s*\(\s*(?:[^()\[\]]*,\s*)?$")
_FUNC_NAME_RE = re.compile(r"(~?\w[\w:~]*|operator\s*(?:\(\)|\[\]|[^\s(]+))"
                           r"\s*\(")
_TAIL_OK_RE = re.compile(
    r"(?:\s|const\b|noexcept\b(?:\([^()]*\))?|override\b|final\b|try\b|"
    r"&&?|->\s*[\w:<>,\s&*\[\]]+|SMPST_[A-Z_]+(?:\([^()]*\))?|"
    r"\[\[[^\]]*\]\]|:\s*.*)*$", re.DOTALL)


def _match_paren(text: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _classify_head(head: str) -> tuple[str, str]:
    """Return (kind, name) for the brace that follows `head`.

    kind: namespace | class | enum | lambda | function | block
    """
    h = head.strip()
    # Strip leading label-like cruft from a previous statement fragment.
    if h.endswith("="):
        return "block", ""
    m = _NS_RE.search(h)
    if m is not None and "(" not in h[m.start():]:
        return "namespace", m.group(1)
    if _ENUM_RE.search(h) and "(" not in h:
        return "enum", ""
    m = _CLASS_RE.search(h)
    if m is not None:
        return "class", m.group("name")
    if _LAMBDA_TAIL_RE.search(h) and "[" in h:
        return "lambda", ""
    # Function definition: some `name(...)` whose closing paren is followed
    # only by qualifiers / a ctor-init list.
    for fm in _FUNC_NAME_RE.finditer(h):
        name = fm.group(1)
        base = name.split("::")[-1].lstrip("~")
        if base in _CONTROL_KEYWORDS:
            continue
        if base.isupper() and "_" in base:
            continue        # macro invocation
        close = _match_paren(h, fm.end() - 1)
        if close == -1:
            continue
        tail = h[close + 1:]
        if _TAIL_OK_RE.fullmatch(tail):
            return "function", name
    return "block", ""


@dataclass
class _Scope:
    kind: str
    name: str
    depth: int            # brace depth *inside* this scope
    entity: object = None


def parse_file(path: pathlib.Path, rel: str) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_preserving(raw)
    sf = SourceFile(path=path, rel=rel, raw=raw, code=code,
                    annotations=parse_annotations(raw))

    stack: list[_Scope] = []
    depth = 0
    paren = 0
    seg_start = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == ";" and paren == 0:
            seg_start = i + 1
        elif c == "{":
            head = code[seg_start:i]
            kind, name = _classify_head(head)
            depth += 1
            paren = 0
            entity: object = None
            if kind == "namespace":
                entity = name
            elif kind == "class":
                ns = _qualify(stack)
                qname = (ns + "::" + name) if ns else name
                entity = Klass(qname=qname, basename=name, file=rel,
                               line=line_of(code, i), start=i + 1, end=-1)
                sf.classes.append(entity)
            elif kind == "function" or kind == "lambda":
                encl = _enclosing_function(stack)
                if kind == "lambda":
                    lam_line = line_of(code, i)
                    passed_to = passed_recv = None
                    lm = _LAMBDA_TAIL_RE.search(head)
                    if lm is not None:
                        pm = _LAMBDA_PASSED_RE.search(head[:lm.start()])
                        if pm is not None:
                            passed_to = pm.group("callee")
                            passed_recv = pm.group("chain").replace(" ", "")
                    entity = Function(
                        qname=f"<lambda@{rel}:{lam_line}>", basename="",
                        klass=_enclosing_class_qname(stack), file=rel,
                        line=lam_line, head=head.strip()[-120:], start=i + 1,
                        end=-1, kind="lambda", passed_to=passed_to,
                        passed_recv=passed_recv)
                else:
                    qname, klass = _function_qname(stack, name)
                    entity = Function(
                        qname=qname, basename=name.split("::")[-1],
                        klass=klass, file=rel, line=line_of(code, i),
                        head=head.strip(), start=i + 1, end=-1)
                sf.functions.append(entity)
                if encl is not None and entity.kind == "lambda":
                    encl.lambdas.append(entity)
                kls = _enclosing_class(stack)
                if kls is not None and entity.kind == "function":
                    kls.methods.add(entity.basename)
            stack.append(_Scope(kind, name, depth, entity))
            seg_start = i + 1
        elif c == "}":
            depth -= 1
            while stack and stack[-1].depth > depth:
                s = stack.pop()
                if isinstance(s.entity, (Klass, Function)):
                    s.entity.end = i
            seg_start = i + 1
        i += 1
    # Close anything left dangling (unbalanced braces shouldn't happen).
    while stack:
        s = stack.pop()
        if isinstance(s.entity, (Klass, Function)) and s.entity.end < 0:
            s.entity.end = n

    for k in sf.classes:
        _collect_class_body(sf, k)
    _collect_file_usings(sf)
    for f in sf.functions:
        _collect_function_facts(sf, f)
    return sf


def _qualify(stack: list[_Scope]) -> str:
    parts = []
    for s in stack:
        if s.kind == "namespace" and s.name:
            parts.append(s.name)
        elif s.kind == "class":
            parts.append(s.name)
    return "::".join(parts)


def _enclosing_function(stack: list[_Scope]) -> Function | None:
    for s in reversed(stack):
        if isinstance(s.entity, Function):
            return s.entity
    return None


def _enclosing_class(stack: list[_Scope]) -> Klass | None:
    for s in reversed(stack):
        if isinstance(s.entity, Klass):
            return s.entity
    return None


def _enclosing_class_qname(stack: list[_Scope]) -> str | None:
    k = _enclosing_class(stack)
    return k.qname if k is not None else None


def _function_qname(stack: list[_Scope], name: str) -> tuple[str, str | None]:
    ns = _qualify(stack)
    if "::" in name:
        # Out-of-line definition: Class::method (possibly Ns::Class::method).
        cls_part, _, base = name.rpartition("::")
        klass = (ns + "::" + cls_part) if ns else cls_part
        return (klass + "::" + base), klass
    encl = _enclosing_class_qname(stack)
    if encl is not None:
        return (encl + "::" + name), encl
    return ((ns + "::" + name) if ns else name), None


# ----------------------------------------------------- class body contents --

_ACCESS_RE = re.compile(r"\b(?:public|private|protected)\s*:")
_ATTR_MACRO_RE = re.compile(
    r"\b(?:SMPST_GUARDED_BY|SMPST_PT_GUARDED_BY|SMPST_ACQUIRED_BEFORE|"
    r"SMPST_ACQUIRED_AFTER|SMPST_REQUIRES|SMPST_EXCLUDES)\s*\([^()]*\)")
_ATTR_RE = re.compile(r"\[\[[^\]]*\]\]|\balignas\s*\([^()]*\)")
_USING_RE = re.compile(r"^\s*using\s+(\w+)\s*=\s*(.+)$", re.DOTALL)


def _split_class_statements(body: str) -> list[tuple[int, str]]:
    """Top-level (depth-0) statements of a class body as (offset, text).
    Brace groups that contain no ';' (member brace-initializers) are kept
    inline; groups containing ';' (method bodies, nested types) truncate the
    statement."""
    stmts: list[tuple[int, str]] = []
    cur: list[str] = []
    start = 0
    i, n = 0, len(body)
    while i < n:
        c = body[i]
        if c == "{":
            d = 0
            j = i
            while j < n:
                if body[j] == "{":
                    d += 1
                elif body[j] == "}":
                    d -= 1
                    if d == 0:
                        break
                j += 1
            group = body[i:j + 1]
            if ";" in group:
                if "".join(cur).strip():
                    stmts.append((start, "".join(cur)))
                cur = []
                start = j + 1
            else:
                cur.append(group)
            i = j + 1
            continue
        if c == ";":
            if "".join(cur).strip():
                stmts.append((start, "".join(cur)))
            cur = []
            start = i + 1
            i += 1
            continue
        if not cur:
            start = i
        cur.append(c)
        i += 1
    if "".join(cur).strip():
        stmts.append((start, "".join(cur)))
    return stmts


_DECL_SKIP_RE = re.compile(
    r"^\s*(?:typedef\b|friend\b|template\b|static_assert\b|using\s+\w+\s*;"
    r"|enum\b|class\s+\w+\s*$|struct\s+\w+\s*$|explicit\b|virtual\b"
    r"|operator\b|~)")


def _parse_member(stmt: str) -> tuple[str, str, str] | None:
    """Parse one class-level statement into (name, type, init) or None."""
    s = _ATTR_MACRO_RE.sub(" ", stmt)
    s = _ATTR_RE.sub(" ", s)
    s = _ACCESS_RE.sub(" ", s).strip()
    if not s or _DECL_SKIP_RE.match(s):
        return None
    # Split off an initializer.
    init = ""
    bm = re.search(r"\{(?P<i>[^{}]*)\}\s*$", s)
    if bm is not None:
        init = bm.group("i").strip()
        s = s[:bm.start()].strip()
    else:
        em = re.search(r"=\s*(?P<i>[^=].*)$", s, re.DOTALL)
        if em is not None and "==" not in s:
            init = em.group("i").strip()
            s = s[:em.start()].strip()
    # A member variable: ends with an identifier (optionally an array form),
    # and the remainder parses as a type (no stray parens => not a method).
    m = re.search(r"(?P<name>\w+)\s*(?:\[\s*\w*\s*\])?\s*$", s)
    if m is None:
        return None
    name = m.group("name")
    type_str = s[:m.start()].strip()
    if not type_str or "(" in type_str or ")" in type_str:
        return None
    if type_str.split()[-1] in ("return", "delete", "new", "goto", "case"):
        return None
    return name, type_str, init


def _collect_class_body(sf: SourceFile, k: Klass) -> None:
    body = sf.code[k.start:k.end]
    # Blank nested class bodies so their members stay out of this table.
    buf = list(body)
    for other in sf.classes:
        if other is k:
            continue
        if other.start >= k.start and other.end <= k.end:
            for j in range(other.start - k.start, other.end - k.start):
                if buf[j] != "\n":
                    buf[j] = " "
    body = "".join(buf)
    for off, stmt in _split_class_statements(body):
        um = _USING_RE.match(stmt.strip())
        if um is not None:
            k.usings[um.group(1)] = um.group(2).strip()
            continue
        parsed = _parse_member(stmt)
        if parsed is None:
            # Method declarations contribute to the method-name set.
            dm = re.search(r"\b(\w+)\s*\(", stmt)
            if dm is not None and dm.group(1) not in _CONTROL_KEYWORDS:
                k.methods.add(dm.group(1))
            continue
        name, type_str, init = parsed
        k.members[name] = Member(name=name, type_str=type_str, init=init,
                                 line=line_of(sf.code, k.start + off))


def _collect_file_usings(sf: SourceFile) -> None:
    for m in re.finditer(r"^\s*using\s+(\w+)\s*=\s*([^;]+);", sf.code,
                         re.MULTILINE):
        sf.usings[m.group(1)] = m.group(2).strip()


# ------------------------------------------------------------- body facts --

_CALL_MEMBER_RE = re.compile(
    r"(?P<chain>(?:\b\w+(?:\[[^\]]*\])?\s*(?:\.|->)\s*)+)"
    r"(?P<name>~?\w+)\s*\(")
_CALL_FREE_RE = re.compile(
    r"(?<![\w.>])(?P<quals>(?:\w+\s*::\s*)*)(?P<name>\w+)\s*\(")
_GUARD_RE = re.compile(
    r"\b(?:smpst\s*::\s*)?(?:LockGuard|std\s*::\s*lock_guard|"
    r"std\s*::\s*unique_lock|std\s*::\s*scoped_lock)\s*(?:<[^<>]*>)?\s+"
    r"(?P<var>\w+)\s*(?P<open>[({])\s*(?P<mutex>[^;)}]*)[)}]")
_EXPLICIT_LOCK_RE = re.compile(
    r"(?P<expr>(?:\b\w+(?:\[[^\]]*\])?\s*(?:\.|->)\s*)*)"
    r"(?P<op>try_lock|lock|unlock)\s*\(\s*\)")
_PARAM_RE = re.compile(r"(?P<type>[\w:<>,\s&*\[\]]+?)\s*[&*]*\s*"
                       r"(?P<name>\w+)\s*(?:=[^,]*)?$")
_LOCAL_RE = re.compile(
    r"(?:^|[;{}()]\s*)(?P<type>(?:const\s+)?[A-Za-z_][\w:]*"
    r"(?:\s*<[^<>;=]*(?:<[^<>;=]*>)?[^<>;=]*>)?)\s*&{0,2}\s+"
    r"(?P<name>\w+)\s*(?:=|\{|\()", re.MULTILINE)
_ALIAS_RE = re.compile(
    r"\b(?:auto|[A-Za-z_][\w:<>]*)\s*&\s*(?P<name>\w+)\s*=\s*"
    r"(?P<expr>[\w.\->\[\]()]+)\s*;")
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*"
    r"(?:\[\s*\w+\s*,\s*(?P<second>\w+)\s*\]|(?P<single>\w+))\s*:\s*"
    r"(?P<cont>[\w.\->\[\]]+)\s*\)")

_CALL_NAME_SKIP = _CONTROL_KEYWORDS | {
    "defined", "max", "min", "move", "forward", "swap", "get", "size",
    "begin", "end", "data", "empty", "clear", "push_back", "emplace_back",
    "reserve", "resize", "assign", "insert", "erase", "find", "count",
    "c_str", "substr", "append", "front", "back", "pop_back", "at",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "make_unique", "make_shared", "to_string", "emplace", "load", "store",
    "exchange", "fetch_add", "fetch_sub", "compare_exchange_weak",
    "compare_exchange_strong", "push", "pop",
}


def _collect_function_facts(sf: SourceFile, f: Function) -> None:
    own = f.own_text(sf.code)
    base = f.start
    # Parameters from the head: text of the last (...) group.
    _collect_params(f)
    for m in _LOCAL_RE.finditer(own):
        tname = m.group("type").strip()
        if tname.split("<")[0].rstrip(":").split("::")[-1] in \
                _CONTROL_KEYWORDS or tname in ("return", "else"):
            continue
        f.locals.setdefault(m.group("name"), tname)
    for m in _RANGE_FOR_RE.finditer(own):
        var = m.group("second") or m.group("single")
        cont = m.group("cont")
        f.locals.setdefault(var, f"__elem__({cont})")
    for m in _ALIAS_RE.finditer(own):
        f.aliases[m.group("name")] = m.group("expr")

    seen_pos: set[int] = set()
    for m in _GUARD_RE.finditer(own):
        pos = base + m.start()
        f.locks.append(LockEvent(
            pos=pos, kind="guard", mutex_expr=m.group("mutex").strip(),
            scope_end=_scope_end(own, m.start()) + base,
            line=line_of(sf.code, pos)))
        seen_pos.add(base + m.start("mutex"))
    for m in _EXPLICIT_LOCK_RE.finditer(own):
        expr = m.group("expr").replace(" ", "")
        if not expr:
            continue               # bare lock() — scoped-lock member? skip
        pos = base + m.start()
        f.locks.append(LockEvent(
            pos=pos, kind=m.group("op"),
            mutex_expr=expr.rstrip(".").rstrip("->"),
            scope_end=_scope_end(own, m.start()) + base,
            line=line_of(sf.code, pos)))
    for m in _CALL_MEMBER_RE.finditer(own):
        name = m.group("name")
        pos = base + m.start("name")
        if name in _CONTROL_KEYWORDS or pos in seen_pos:
            continue
        chain = [c for c in re.split(r"\.|->", m.group("chain").replace(
            " ", "")) if c]
        f.calls.append(CallSite(pos=pos, chain=chain, quals="", name=name,
                                line=line_of(sf.code, pos)))
    for m in _CALL_FREE_RE.finditer(own):
        name = m.group("name")
        if name in _CONTROL_KEYWORDS:
            continue
        if name.isupper() and len(name) > 2:
            continue               # macro invocation
        pos = base + m.start("name")
        f.calls.append(CallSite(pos=pos, chain=[],
                                quals=m.group("quals").replace(" ", ""),
                                name=name, line=line_of(sf.code, pos)))


def _collect_params(f: Function) -> None:
    head = f.head
    # The parameter list is the parenthesized group following the function
    # name; take the LAST balanced top-level group before any trailing
    # qualifiers / init list.
    m = _FUNC_NAME_RE.search(head) if f.kind == "function" else None
    if f.kind == "lambda":
        lm = re.search(r"\[[^\[\]]*\]\s*\(", head)
        if lm is None:
            return
        open_pos = lm.end() - 1
    elif m is not None:
        # find the name whose tail parses; reuse classification logic loosely
        open_pos = None
        for fm in _FUNC_NAME_RE.finditer(head):
            close = _match_paren(head, fm.end() - 1)
            if close != -1 and _TAIL_OK_RE.fullmatch(head[close + 1:]):
                open_pos = fm.end() - 1
                break
        if open_pos is None:
            return
    else:
        return
    close = _match_paren(head, open_pos)
    if close == -1:
        return
    args = head[open_pos + 1:close]
    for arg in _split_args(args):
        pm = _PARAM_RE.match(arg.strip())
        if pm is not None and pm.group("type").strip() not in ("void",):
            f.params[pm.group("name")] = pm.group("type").strip()


def _split_args(args: str) -> list[str]:
    out, depth, cur = [], 0, []
    for c in args:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if "".join(cur).strip():
        out.append("".join(cur))
    return out


def _scope_end(own: str, pos: int) -> int:
    """Position of the `}` closing the innermost brace scope containing pos
    (relative to `own`; end of text when at body top level)."""
    depth = 0
    for i in range(pos, len(own)):
        c = own[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(own)


# ---------------------------------------------------------------- project --

_WRAPPERS = ("std::shared_ptr", "shared_ptr", "std::unique_ptr",
             "unique_ptr", "std::weak_ptr", "weak_ptr", "std::vector",
             "vector", "std::deque", "deque", "std::array", "array",
             "std::optional", "optional", "Padded", "smpst::Padded",
             "std::reference_wrapper", "reference_wrapper")


class Project:
    """Cross-file index + type/call resolution."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        self.classes: dict[str, Klass] = {}
        self.class_by_base: dict[str, list[Klass]] = {}
        self.functions: dict[str, list[Function]] = {}
        self.func_by_base: dict[str, list[Function]] = {}
        for sf in files:
            for k in sf.classes:
                self.classes.setdefault(k.qname, k)
                self.class_by_base.setdefault(k.basename, []).append(k)
            for fn in sf.functions:
                if fn.kind == "lambda":
                    continue
                self.functions.setdefault(fn.qname, []).append(fn)
                self.func_by_base.setdefault(fn.basename, []).append(fn)

    # -- type resolution ----------------------------------------------------

    def resolve_alias(self, type_str: str, klass: Klass | None,
                      sf: SourceFile | None, depth: int = 0) -> str:
        t = type_str.strip()
        if depth > 6:
            return t
        t = re.sub(r"^(?:const|mutable|volatile|static|constexpr)\s+", "", t)
        t = t.rstrip("&* ")
        base = t.split("<")[0].strip()
        if klass is not None and base in klass.usings:
            return self.resolve_alias(klass.usings[base], klass, sf,
                                      depth + 1)
        if sf is not None and base in sf.usings:
            return self.resolve_alias(sf.usings[base], klass, sf, depth + 1)
        return t

    def strip_wrappers(self, type_str: str) -> str:
        t = type_str.strip().rstrip("&* ")
        for _ in range(6):
            base = t.split("<")[0].strip()
            if base in _WRAPPERS and "<" in t:
                inner = t[t.index("<") + 1:t.rindex(">")]
                t = _split_args(inner)[0].strip().rstrip("[] ")
            else:
                break
        return t.strip().rstrip("&* ")

    def class_of_type(self, type_str: str, klass: Klass | None = None,
                      sf: SourceFile | None = None) -> Klass | None:
        t = self.resolve_alias(type_str, klass, sf)
        t = self.strip_wrappers(t)
        # Element type of a container the model tracked via range-for.
        base = t.split("<")[0].strip()
        if t in self.classes:
            return self.classes[t]
        # Suffix match: smpst::service::Session vs service::Session.
        cands = [k for q, k in self.classes.items()
                 if q == t or q.endswith("::" + t)]
        if len(cands) == 1:
            return cands[0]
        cands = self.class_by_base.get(base.split("::")[-1], [])
        if len(cands) == 1:
            return cands[0]
        return None

    def element_type(self, cont_type: str, klass: Klass | None,
                     sf: SourceFile | None) -> str | None:
        t = self.resolve_alias(cont_type, klass, sf)
        base = t.split("<")[0].strip()
        if "<" not in t:
            return None
        inner = t[t.index("<") + 1:t.rindex(">")]
        parts = _split_args(inner)
        if base.endswith("map") and len(parts) >= 2:
            return parts[1].strip()
        if parts:
            return parts[0].strip()
        return None

    # -- expression typing --------------------------------------------------

    def type_of_expr(self, expr: str, fn: Function,
                     sf: SourceFile) -> str | None:
        """Best-effort type of a dotted expression like `c.session` or
        `st.queues[tid]`, resolved in `fn`'s environment."""
        expr = expr.replace(" ", "")
        comps = [c for c in re.split(r"\.|->", expr) if c]
        if not comps:
            return None
        t = self._type_of_name(comps[0], fn, sf)
        if t is None:
            return None
        for comp in comps[1:]:
            k = self.class_of_type(t, self._klass_of(fn), sf)
            if k is None:
                return None
            name = comp.split("[")[0]
            mem = k.members.get(name)
            if mem is None:
                return None
            t = mem.type_str
            if "[" in comp:
                elem = self.element_type(t, k, sf)
                t = elem if elem is not None else t
        # Trailing subscript on the first component.
        if "[" in comps[0] and len(comps) == 1:
            elem = self.element_type(t, self._klass_of(fn), sf)
            if elem is not None:
                t = elem
        return t

    def _klass_of(self, fn: Function) -> Klass | None:
        return self.classes.get(fn.klass) if fn.klass else None

    def _type_of_name(self, name0: str, fn: Function,
                      sf: SourceFile) -> str | None:
        name = name0.split("[")[0]
        if name == "this":
            return fn.klass
        for env in (fn.locals, fn.params):
            if name in env:
                t = env[name]
                em = re.match(r"__elem__\((.+)\)", t)
                if em is not None:
                    cont_t = self.type_of_expr(em.group(1), fn, sf)
                    if cont_t is None:
                        return None
                    t = self.element_type(cont_t, self._klass_of(fn), sf) \
                        or cont_t
                if "[" in name0:
                    elem = self.element_type(t, self._klass_of(fn), sf)
                    return elem if elem is not None else t
                return t
        if name in fn.aliases:
            return self.type_of_expr(fn.aliases[name], fn, sf)
        k = self._klass_of(fn)
        if k is not None and name in k.members:
            t = k.members[name].type_str
            if "[" in name0:
                elem = self.element_type(t, k, sf)
                return elem if elem is not None else t
            return t
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, call: CallSite, fn: Function,
                     sf: SourceFile) -> list[Function]:
        """Resolve a call site to project-defined functions ([] if external
        or unresolvable)."""
        name = call.name
        if call.chain:
            recv = ".".join(call.chain)
            t = self.type_of_expr(recv, fn, sf)
            if t is not None:
                k = self.class_of_type(t, self._klass_of(fn), sf)
                if k is not None:
                    qn = k.qname + "::" + name
                    if qn in self.functions:
                        return self.functions[qn]
                    # declared in that class but defined elsewhere/nowhere
                    if name in k.methods:
                        return []
            return self._unique_base(name)
        if call.quals:
            q = call.quals.rstrip(":")
            for prefix in (q, "smpst::" + q):
                qn = prefix + "::" + name
                if qn in self.functions:
                    return self.functions[qn]
            if q in ("std", "std::chrono", "chrono"):
                return []
            return self._unique_base(name)
        # Unqualified: same class first, then same/enclosing namespace.
        if fn.klass:
            qn = fn.klass + "::" + name
            if qn in self.functions:
                return self.functions[qn]
        ns = fn.qname.rpartition("::")[0]
        while ns:
            qn = ns + "::" + name
            if qn in self.functions:
                return self.functions[qn]
            ns = ns.rpartition("::")[0]
        if name in self.functions:
            return self.functions[name]
        return self._unique_base(name)

    def _unique_base(self, name: str) -> list[Function]:
        if name in _CALL_NAME_SKIP:
            return []
        cands = self.func_by_base.get(name, [])
        # Unique-definition fallback: only when unambiguous project-wide.
        qnames = {f.qname for f in cands}
        if len(qnames) == 1:
            return cands
        return []

    # -- lock identity ------------------------------------------------------

    def lock_identity(self, mutex_expr: str, fn: Function,
                      sf: SourceFile) -> str | None:
        """Canonical name for a mutex expression: `Class::member` for member
        mutexes, `fn-qname::name` for locals, None if unresolvable."""
        expr = mutex_expr.replace(" ", "")
        expr = re.sub(r"^[&*]+", "", expr)
        comps = [c for c in re.split(r"\.|->", expr) if c]
        if not comps:
            return None
        last = comps[0].split("[")[0] if len(comps) == 1 else \
            comps[-1].split("[")[0]
        if len(comps) == 1:
            name = last
            if name == "this":
                return None
            k = self._klass_of(fn)
            if k is not None and name in k.members:
                return k.qname + "::" + name
            if name in fn.aliases:
                return self.lock_identity(fn.aliases[name], fn, sf)
            if name in fn.params:
                # Pass-through reference (e.g. CondVar::wait(Mutex&)): the
                # actual mutex depends on the caller — unresolvable here.
                return None
            if name in fn.locals:
                return fn.qname + "::" + name
            return None
        # Member of some other object: resolve the owner chain's class.
        owner = ".".join(comps[:-1])
        t = self.type_of_expr(owner, fn, sf)
        if t is None:
            return None
        k = self.class_of_type(t, self._klass_of(fn), sf)
        if k is None:
            return None
        if last in k.members:
            return k.qname + "::" + last
        return None
