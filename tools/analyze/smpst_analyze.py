#!/usr/bin/env python3
"""smpst_analyze: semantic concurrency analyzer for the spanning-tree repo.

Where tools/smpst_lint.py matches tokens, this tool builds a model of the
sources (tools/analyze/cpp_model.py): classes and their members, functions
and lambdas, reference aliases, call graphs, and lock scopes.  That model
closes the regex linter's blind spots:

  SA1 benign-race discipline
      Every access to the traversal's deliberately-racy storage (the
      `color` / `parent` arrays of the state structs in src/core) from a
      *concurrent* context — code reachable from a worker lambda handed to
      ThreadPool::run — must go through SMPST_BENIGN_RACE_LOAD/STORE or
      race_cas() (support/race.hpp).  Caught even through reference
      aliases (`auto& c = st.color; c[v] = 1;`) and raw-pointer escapes
      (`st.color.get()`).  Taking the address for prefetching
      (`&st.color[x]`) is allowed: no value is read or written.
      Sequential phases (constructors, code running before the pool enters
      or after it joins) may use plain accesses.

  SA2 memory-order explicitness
      Operations on std::atomic variables must name a std::memory_order —
      including variables whose atomic-ness hides behind a `using` alias,
      overloaded operators (++, --, +=, =) that are implicit seq_cst RMWs,
      and implicit conversion reads (`if (done_)`).  This is the semantic
      version of SL001: the variable's *type* is resolved, not its
      spelling at the declaration site.

  SA3 static lock-order extraction
      Walks every LockGuard / Mutex::lock scope, resolves each mutex
      expression to its declaring class member, and builds the cross-TU
      lock acquisition graph (lock A held while B is acquired => edge
      A -> B, including acquisitions made by callees).  Fails on (a) any
      edge between ranked mutexes that does not strictly increase the
      lockdep rank (src/support/lock_order.hpp), and (b) any cycle in the
      graph.  This is the static mirror of the runtime lockdep layer; it
      sees orders that no test happened to execute.

  SA4 loop-thread blocking-call detection
      Computes the set of functions reachable from TcpServer::run — the
      epoll loop thread — and rejects blocking operations on any of those
      paths: condition-variable waits, sleeps, file streams / stdio,
      ThreadPool::run region joins (a compute barrier), and acquisitions
      of mutexes not on the audited bounded-hold allowlist.  The loop
      thread may block in exactly one place: its own epoll_wait.

Inputs: the CMake-exported build/compile_commands.json enumerates the
translation units (fall back to globbing src/ when it is absent — e.g.
before the first configure).  Headers under src/ are always modelled.

Silencing a false positive (see docs/CONCURRENCY.md for policy):

    some_call();  // smpst-analyze: allow(SA4): <why this is safe>

on the flagged line (or the line above) suppresses that finding; for SA4
the annotation on a call site also prunes the call edge, so everything
behind a justified boundary is skipped.  Where the model cannot see an
effect (std::function indirection), declare it:

    sink_(line);  // smpst-analyze: calls(smpst::net::TcpServer::post_response)
    handler();    // smpst-analyze: acquires(TcpServer::mail_mutex_)

Usage:
  tools/analyze/smpst_analyze.py [--root DIR] [--compile-commands PATH]
                                 [--only SA1,SA3] [--backend builtin|libclang]
                                 [--scope auto|fixture] [paths...]

Exit status 1 when any finding is reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import cpp_model  # noqa: E402
from cpp_model import (Function, Project, SourceFile, line_of)  # noqa: E402

# ------------------------------------------------------------------ policy --

#: SA1: member names of the deliberately-racy traversal storage (src/core).
RACY_MEMBERS = {"color", "colour", "parent"}

#: SA1/SA2: the sanctioned access wrappers.
RACE_WRAPPERS = ("SMPST_BENIGN_RACE_LOAD", "SMPST_BENIGN_RACE_STORE",
                 "race_cas")

#: SA2: atomic member functions that take a memory_order.
ATOMIC_METHODS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
                  "fetch_and", "fetch_or", "fetch_xor",
                  "compare_exchange_weak", "compare_exchange_strong",
                  "test_and_set", "test", "clear", "wait")

#: SA4: mutexes the loop thread may take — audited bounded-hold-time only.
#: Keyed by `Class::member` suffix.  Justifications live in
#: docs/CONCURRENCY.md ("Loop-thread mutex allowlist").
SA4_MUTEX_ALLOWLIST = {
    "TcpServer::mail_mutex_",       # mailbox swap/append: O(1) holds
    "Session::mutex_",              # slot-buffer bookkeeping: O(response)
    "BoundedQueue::mutex_",         # try_push/try_pop: O(1), never waits
    "GraphRegistry::mutex_",        # map lookup/insert: no I/O under lock
    "MetricsRegistry::mutex_",      # registry map: O(log n) lookups
    "SlotWatch::mutex",             # executor slot-watch registration: O(1)
}

#: SA4: call names that block, with a short reason each.
SA4_BLOCKING_CALLS = {
    "sleep_for": "sleeps the calling thread",
    "sleep_until": "sleeps the calling thread",
    "usleep": "sleeps the calling thread",
    "nanosleep": "sleeps the calling thread",
    "select": "blocking readiness wait outside the epoll loop",
    "ppoll": "blocking readiness wait outside the epoll loop",
    "fopen": "synchronous file I/O",
    "freopen": "synchronous file I/O",
    "fread": "synchronous file I/O",
    "fwrite": "synchronous file I/O",
    "fgets": "synchronous file I/O",
    "system": "spawns and waits on a subprocess",
    "popen": "spawns and waits on a subprocess",
}

#: SA4: condition-variable wait method names.
SA4_WAIT_METHODS = {"wait", "wait_for", "wait_until"}

#: SA4: types whose construction implies file I/O.
SA4_STREAM_RE = re.compile(r"\bstd\s*::\s*(?:i|o)?fstream\b")

#: SA4 entry points (qualified-name suffixes).
SA4_ENTRIES = ("TcpServer::run",)

#: Lambdas passed to these (receiver, callee) pairs run on OTHER threads;
#: they must never be treated as synchronous calls (cpp_model already keeps
#: lambda bodies out of the enclosing function).  Lambdas passed to
#: ThreadPool::run are the SA1 concurrent roots.
CONCURRENT_SINK_CALLEES = {"run"}

RANK_CONST_RE = re.compile(
    r"inline\s+constexpr\s+Rank\s+(k\w+)\s*\{\s*(\d+)\s*,")
RANK_REF_RE = re.compile(r"(?:lockdep\s*::\s*)?rank\s*::\s*(k\w+)")

LOCK_CLASS_BASENAMES = {"Mutex", "SpinLock"}


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------- analyzer --

class Analyzer:
    def __init__(self, root: pathlib.Path, files: list[pathlib.Path],
                 fixture_mode: bool = False):
        self.root = root.resolve()
        self.fixture_mode = fixture_mode
        self.sources: list[SourceFile] = []
        for p in sorted(set(files)):
            rel = self._rel(p)
            self.sources.append(cpp_model.parse_file(p, rel))
        self.project = Project(self.sources)
        self.by_rel = {sf.rel: sf for sf in self.sources}
        self.fn_file: dict[int, SourceFile] = {}
        for sf in self.sources:
            for fn in sf.functions:
                self.fn_file[id(fn)] = sf
        self.ranks = self._load_ranks()
        self.mutex_rank = self._index_mutex_ranks()
        self.findings: list[Finding] = []
        self._acquired_memo: dict[int, set[str]] = {}

    # -- infrastructure -----------------------------------------------------

    def _rel(self, p: pathlib.Path) -> str:
        try:
            return p.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return p.as_posix()

    def _load_ranks(self) -> dict[str, int]:
        ranks: dict[str, int] = {}
        hdr = self.root / "src" / "support" / "lock_order.hpp"
        texts = []
        if hdr.exists():
            texts.append(hdr.read_text(encoding="utf-8", errors="replace"))
        for sf in self.sources:        # fixtures may declare their own
            texts.append(sf.code)
        for t in texts:
            for m in RANK_CONST_RE.finditer(t):
                ranks.setdefault(m.group(1), int(m.group(2)))
        return ranks

    def _index_mutex_ranks(self) -> dict[str, tuple[str, int] | None]:
        """lock identity (`Class::member` qualified) -> (rank const, order)
        or None for unranked mutexes."""
        out: dict[str, tuple[str, int] | None] = {}
        for sf in self.sources:
            for k in sf.classes:
                for mem in k.members.values():
                    t = self.project.resolve_alias(mem.type_str, k, sf)
                    base = t.split("<")[0].split("::")[-1].strip()
                    if base not in LOCK_CLASS_BASENAMES:
                        continue
                    ident = k.qname + "::" + mem.name
                    rm = RANK_REF_RE.search(mem.init)
                    if rm is not None and rm.group(1) in self.ranks:
                        out[ident] = (rm.group(1), self.ranks[rm.group(1)])
                    else:
                        out[ident] = None
        return out

    def _in_scope(self, sf: SourceFile, dirs: tuple[str, ...]) -> bool:
        if self.fixture_mode:
            return True
        return any(sf.rel.startswith(d) for d in dirs)

    def _allowed(self, sf: SourceFile, line: int, rule: str) -> bool:
        for ln in (line, line - 1):
            for ann in sf.annotations.get(ln, []):
                if ann.kind == "allow" and rule in ann.args:
                    return True
        return False

    def _emit(self, sf: SourceFile | None, line: int, rule: str,
              msg: str) -> None:
        if sf is None:
            self.findings.append(Finding("<unknown>", line, rule, msg))
            return
        if self._allowed(sf, line, rule):
            return
        self.findings.append(Finding(sf.rel, line, rule, msg))

    def _enclosing_fn_map(self) -> dict[int, Function]:
        out: dict[int, Function] = {}
        for sf in self.sources:
            for fn in sf.functions:
                for lam in fn.lambdas:
                    out[id(lam)] = fn
        return out

    # -- SA1 ----------------------------------------------------------------

    def check_sa1(self) -> None:
        scope = ("src/core/",)
        racy_classes: dict[str, set[str]] = {}
        for sf in self.sources:
            if not self._in_scope(sf, scope):
                continue
            for k in sf.classes:
                hits = RACY_MEMBERS & set(k.members)
                if hits:
                    racy_classes[k.qname] = hits
        if not racy_classes:
            return
        concurrent = self._concurrent_functions()
        names = "|".join(sorted(RACY_MEMBERS))
        access_re = re.compile(
            rf"(?P<addr>&\s*)?"
            rf"(?P<chain>(?:\b\w+(?:\[[^\]]*\])?\s*(?:\.|->)\s*)*)"
            rf"\b(?P<mem>{names})\s*(?P<how>\[|\.\s*(?:get|data)\s*\()")
        for fn in concurrent:
            sf = self.fn_file[id(fn)]
            if not self._in_scope(sf, scope):
                continue
            own = fn.own_text(sf.code)
            wrapped = self._wrapper_spans(own)
            for m in access_re.finditer(own):
                racy = self._is_racy_access(m, fn, sf, racy_classes)
                if not racy:
                    continue
                pos = fn.start + m.start("mem")
                if any(a <= m.start("mem") < b for a, b in wrapped):
                    continue
                if m.group("addr") and m.group("how") == "[":
                    continue    # &arr[i]: address-of for prefetch, no access
                what = ("raw pointer escape defeats the benign-race "
                        "annotation layer"
                        if m.group("how") != "[" else
                        "plain access in a concurrent context")
                self._emit(sf, line_of(sf.code, pos), "SA1",
                           f"'{m.group('chain')}{m.group('mem')}': {what}; "
                           f"use SMPST_BENIGN_RACE_LOAD/STORE or race_cas "
                           f"(support/race.hpp)")
            # Reference aliases of racy storage: uses of the alias.
            for alias, expr in fn.aliases.items():
                am = re.search(rf"\b({names})$", expr)
                if am is None:
                    continue
                alias_re = re.compile(rf"\b{re.escape(alias)}\s*\[")
                for m in alias_re.finditer(own):
                    if any(a <= m.start() < b for a, b in wrapped):
                        continue
                    pos = fn.start + m.start()
                    self._emit(sf, line_of(sf.code, pos), "SA1",
                               f"'{alias}' aliases racy storage "
                               f"'{expr}'; plain access in a concurrent "
                               f"context; use SMPST_BENIGN_RACE_LOAD/STORE "
                               f"or race_cas")

    def _is_racy_access(self, m: re.Match, fn: Function, sf: SourceFile,
                        racy_classes: dict[str, set[str]]) -> bool:
        chain = m.group("chain").replace(" ", "").rstrip(".")
        chain = re.sub(r"->$", "", chain)
        mem = m.group("mem")
        if chain:
            t = self.project.type_of_expr(chain, fn, sf)
            if t is None:
                # Unresolvable owner: conservatively racy when any in-scope
                # class has a racy member of this name.
                return any(mem in hits for hits in racy_classes.values())
            k = self.project.class_of_type(
                t, self.project._klass_of(fn), sf)
            return k is not None and k.qname in racy_classes \
                and mem in racy_classes[k.qname]
        # Implicit this.
        return fn.klass in racy_classes and mem in racy_classes[fn.klass]

    def _wrapper_spans(self, own: str) -> list[tuple[int, int]]:
        spans = []
        for m in re.finditer(
                r"\b(?:" + "|".join(RACE_WRAPPERS) + r")\s*\(", own):
            close = cpp_model._match_paren(own, m.end() - 1)
            if close != -1:
                spans.append((m.start(), close))
        return spans

    def _concurrent_functions(self) -> list[Function]:
        encl = self._enclosing_fn_map()
        seeds: list[Function] = []
        for sf in self.sources:
            for fn in sf.functions:
                if fn.kind != "lambda" or fn.passed_to is None:
                    continue
                if fn.passed_to not in CONCURRENT_SINK_CALLEES:
                    continue
                recv = (fn.passed_recv or "").rstrip(".->")
                parent = encl.get(id(fn))
                pool_like = "pool" in recv.lower()
                if parent is not None and recv:
                    t = self.project.type_of_expr(recv, parent, sf)
                    if t is not None and "ThreadPool" in t:
                        pool_like = True
                if pool_like:
                    seeds.append(fn)
        reached: dict[int, Function] = {id(s): s for s in seeds}
        work = list(seeds)
        while work:
            fn = work.pop()
            sf = self.fn_file[id(fn)]
            for call in fn.calls:
                for callee in self.project.resolve_call(call, fn, sf):
                    if id(callee) not in reached:
                        reached[id(callee)] = callee
                        work.append(callee)
        return list(reached.values())

    # -- SA2 ----------------------------------------------------------------

    def check_sa2(self) -> None:
        scope = ("src/core/", "src/sched/", "src/obs/", "src/service/",
                 "src/net/", "src/support/")
        for sf in self.sources:
            if not self._in_scope(sf, scope):
                continue
            for fn in sf.functions:
                self._sa2_function(sf, fn)

    def _is_atomic_type(self, type_str: str, klass, sf) -> bool:
        if type_str.rstrip().endswith("*"):
            return False        # pointer TO an atomic, not an atomic
        t = self.project.resolve_alias(type_str, klass, sf)
        return re.match(r"(?:std\s*::\s*)?atomic(?:_ref|_flag)?\s*(?:<|$)",
                        t) is not None

    def _sa2_function(self, sf: SourceFile, fn: Function) -> None:
        own = fn.own_text(sf.code)
        klass = self.project._klass_of(fn)
        # 1) Method calls on expressions that resolve to atomic types.
        meth = "|".join(ATOMIC_METHODS)
        call_re = re.compile(
            rf"(?P<expr>(?:\b\w+(?:\[[^\]]*\])?\s*(?:\.|->)\s*)*"
            rf"\b\w+(?:\[[^\]]*\])?)\s*(?:\.|->)\s*"
            rf"(?P<method>{meth})\s*\(")
        for m in call_re.finditer(own):
            expr = m.group("expr").replace(" ", "")
            t = self.project.type_of_expr(expr, fn, sf)
            if t is None or not self._is_atomic_type(t, klass, sf):
                continue
            close = cpp_model._match_paren(own, m.end() - 1)
            args = own[m.end():close] if close != -1 else ""
            if "memory_order" in args:
                continue
            if m.group("method") in ("notify_one", "notify_all"):
                continue
            pos = fn.start + m.start("method")
            self._emit(sf, line_of(sf.code, pos), "SA2",
                       f"atomic op '{expr}.{m.group('method')}' defaults to "
                       f"seq_cst; name the memory_order explicitly "
                       f"(resolved type: {t.strip()})")
        # 2) Overloaded operators / implicit conversions on named atomics.
        atomics = self._atomic_names(fn, sf, klass)
        for name in sorted(atomics):
            decl_spots = {
                dm.start(1) for dm in re.finditer(
                    rf"\batomic\w*\s*(?:<[^;{{]*>)?\s*({re.escape(name)})\b",
                    own)}
            op_re = re.compile(
                rf"\b{re.escape(name)}\s*"
                rf"(?P<op>\+\+|--|[+\-|&^]=|=(?![=]))")
            for m in op_re.finditer(own):
                if m.start() in decl_spots:
                    continue
                if own[max(0, m.start() - 1)] in ".>&:" or \
                        own[max(0, m.start() - 1)].isalnum() or \
                        own[max(0, m.start() - 1)] == "_":
                    continue
                pos = fn.start + m.start()
                self._emit(sf, line_of(sf.code, pos), "SA2",
                           f"operator '{m.group('op')}' on atomic '{name}' "
                           f"is an implicit seq_cst RMW; use fetch_/store "
                           f"with a named memory_order")
            bare_re = re.compile(
                rf"\b{re.escape(name)}\b"
                rf"(?!\s*(?:\.|->|\[|\(|\+\+|--|[+\-|&^]?=[^=]|::))")
            for m in bare_re.finditer(own):
                prev = own[max(0, m.start() - 1)]
                if prev in ".>&:_" or prev.isalnum():
                    continue
                if m.start() in decl_spots:
                    continue
                nxt = own[m.end():m.end() + 2].lstrip()
                if nxt[:1] in ("{",):
                    continue        # brace-init of the declaration
                pos = fn.start + m.start()
                self._emit(sf, line_of(sf.code, pos), "SA2",
                           f"implicit conversion read of atomic '{name}' is "
                           f"a seq_cst load; spell .load(memory_order_...)")

    def _atomic_names(self, fn: Function, sf: SourceFile,
                      klass) -> set[str]:
        out: set[str] = set()
        for env in (fn.params, fn.locals):
            for name, t in env.items():
                if self._is_atomic_type(t, klass, sf):
                    out.add(name)
        if klass is not None:
            for name, mem in klass.members.items():
                if self._is_atomic_type(mem.type_str, klass, sf):
                    out.add(name)
        return out

    # -- SA3 ----------------------------------------------------------------

    def check_sa3(self) -> None:
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for sf in self.sources:
            for fn in sf.functions:
                self._sa3_function_edges(sf, fn, edges)
        # Rank-rule violations on direct edges.
        for (a, b), (rel, line) in sorted(edges.items()):
            sf = self.by_rel.get(rel)
            ra = self.mutex_rank.get(a)
            rb = self.mutex_rank.get(b)
            if a == b:
                self._emit(sf, line, "SA3",
                           f"recursive acquisition: '{_short(a)}' acquired "
                           f"while already held")
                continue
            if ra is not None and rb is not None:
                if rb[1] < ra[1]:
                    self._emit(sf, line, "SA3",
                               f"lock-order rank inversion: "
                               f"'{_short(b)}' (rank {rb[0]}={rb[1]}) "
                               f"acquired while '{_short(a)}' "
                               f"(rank {ra[0]}={ra[1]}) is held; rank must "
                               f"strictly increase on nested acquisition")
                elif rb[1] == ra[1]:
                    self._emit(sf, line, "SA3",
                               f"same-rank nesting: '{_short(b)}' and "
                               f"'{_short(a)}' both have rank {ra[0]}"
                               f"={ra[1]}; same-rank locks may never nest")
        # Cycles over the whole graph (covers unranked mutexes).
        graph: dict[str, set[str]] = {}
        for (a, b) in edges:
            if a != b:
                graph.setdefault(a, set()).add(b)
        for cycle in _find_cycles(graph):
            pair = (cycle[0], cycle[1])
            rel, line = edges.get(pair, next(iter(edges.values())))
            sf = self.by_rel.get(rel)
            path = " -> ".join(_short(x) for x in cycle + [cycle[0]])
            self._emit(sf, line, "SA3",
                       f"lock acquisition cycle: {path}; two threads taking "
                       f"these paths concurrently can deadlock")

    def _acquired_in(self, fn: Function, stack: set[int]) -> set[str]:
        """Lock identities (transitively) acquired by fn."""
        if id(fn) in self._acquired_memo:
            return self._acquired_memo[id(fn)]
        if id(fn) in stack:
            return set()
        stack = stack | {id(fn)}
        sf = self.fn_file[id(fn)]
        out: set[str] = set()
        for ev in fn.locks:
            if ev.kind == "unlock":
                continue
            ident = self.project.lock_identity(ev.mutex_expr, fn, sf)
            if ident is not None:
                out.add(ident)
        for call in fn.calls:
            for callee in self.project.resolve_call(call, fn, sf):
                out |= self._acquired_in(callee, stack)
        for ln, anns in sf.annotations.items():
            if not (fn.start <= self._line_pos(sf, ln) <= fn.end):
                continue
            for ann in anns:
                if ann.kind == "acquires":
                    out |= {self._resolve_lock_name(a) for a in ann.args
                            if self._resolve_lock_name(a)}
                elif ann.kind == "calls":
                    for target in self._annotation_callees(ann):
                        out |= self._acquired_in(target, stack)
        self._acquired_memo[id(fn)] = out
        return out

    def _line_pos(self, sf: SourceFile, ln: int) -> int:
        # Position of the start of line `ln` in sf.code.
        if not hasattr(sf, "_line_starts"):
            starts = [0]
            for i, c in enumerate(sf.code):
                if c == "\n":
                    starts.append(i + 1)
            sf._line_starts = starts
        starts = sf._line_starts
        return starts[ln - 1] if ln - 1 < len(starts) else len(sf.code)

    def _resolve_lock_name(self, name: str) -> str | None:
        name = name.strip()
        for ident in self.mutex_rank:
            if ident == name or ident.endswith("::" + name):
                return ident
        return name if "::" in name else None

    def _annotation_callees(self, ann) -> list[Function]:
        out = []
        for a in ann.args:
            a = a.strip()
            if a in self.project.functions:
                out += self.project.functions[a]
            else:
                for qn, fns in self.project.functions.items():
                    if qn.endswith("::" + a) or qn.endswith(a):
                        out += fns
                        break
        return out

    def _sa3_function_edges(
            self, sf: SourceFile, fn: Function,
            edges: dict[tuple[str, str], tuple[str, int]]) -> None:
        events = []         # (pos, kind, ident, scope_end, line)
        for ev in fn.locks:
            ident = self.project.lock_identity(ev.mutex_expr, fn, sf)
            events.append((ev.pos, ev.kind, ident, ev.scope_end, ev.line))
        for call in fn.calls:
            events.append((call.pos, "call", call, None, call.line))
        for ln, anns in sf.annotations.items():
            pos = self._line_pos(sf, ln)
            if not (fn.start <= pos <= fn.end):
                continue
            in_lambda = any(lam.start <= pos < lam.end for lam in fn.lambdas)
            if in_lambda:
                continue
            for ann in anns:
                if ann.kind == "acquires":
                    for a in ann.args:
                        ident = self._resolve_lock_name(a)
                        events.append((pos, "acquire_ann", ident, pos, ln))
                elif ann.kind == "calls":
                    events.append((pos, "call_ann", ann, None, ln))
        events.sort(key=lambda e: (e[0] if e[0] is not None else 0))

        held: list[tuple[str, int, str]] = []   # (ident, scope_end, kind)
        for pos, kind, payload, scope_end, ev_line in events:
            held = [h for h in held if h[1] > pos]
            if kind in ("guard", "lock", "try_lock", "acquire_ann"):
                ident = payload
                if ident is not None:
                    for h_ident, _, _ in held:
                        if h_ident is None:
                            continue
                        key = (h_ident, ident)
                        edges.setdefault(key, (sf.rel, ev_line))
                if kind != "acquire_ann":
                    held.append((ident, scope_end, kind))
            elif kind == "unlock":
                for i in range(len(held) - 1, -1, -1):
                    if held[i][0] == payload:
                        held.pop(i)
                        break
            elif kind in ("call", "call_ann") and held:
                if self._allowed(sf, ev_line, "SA3"):
                    continue
                if kind == "call":
                    callees = self.project.resolve_call(payload, fn, sf)
                else:
                    callees = self._annotation_callees(payload)
                acquired: set[str] = set()
                for callee in callees:
                    acquired |= self._acquired_in(callee, set())
                for h_ident, _, _ in held:
                    if h_ident is None:
                        continue
                    for ident in acquired:
                        edges.setdefault((h_ident, ident),
                                         (sf.rel, ev_line))

    # -- SA4 ----------------------------------------------------------------

    def check_sa4(self, entries: tuple[str, ...] = SA4_ENTRIES) -> None:
        roots = []
        for sf in self.sources:
            for fn in sf.functions:
                if any(fn.qname.endswith(e) for e in entries):
                    roots.append(fn)
        if not roots:
            return
        # BFS with shortest-path tracking for readable reports.
        paths: dict[int, list[str]] = {}
        work: list[Function] = []
        for r in roots:
            paths[id(r)] = [r.qname]
            work.append(r)
        order: list[Function] = []
        while work:
            fn = work.pop(0)
            order.append(fn)
            sf = self.fn_file[id(fn)]
            targets: list[tuple[int, list[Function]]] = []
            for call in fn.calls:
                targets.append(
                    (call.line, self.project.resolve_call(call, fn, sf)))
            for ln, anns in sf.annotations.items():
                pos = self._line_pos(sf, ln)
                if not (fn.start <= pos <= fn.end):
                    continue
                if any(lam.start <= pos < lam.end for lam in fn.lambdas):
                    continue
                for ann in anns:
                    if ann.kind == "calls":
                        targets.append((ln, self._annotation_callees(ann)))
            for ln, callees in targets:
                if self._allowed(sf, ln, "SA4"):
                    continue        # justified boundary: prune the edge
                for callee in callees:
                    if id(callee) not in paths:
                        paths[id(callee)] = paths[id(fn)] + [callee.qname]
                        work.append(callee)
        for fn in order:
            self._sa4_function(fn, paths[id(fn)])

    def _sa4_function(self, fn: Function, path: list[str]) -> None:
        sf = self.fn_file[id(fn)]
        own = fn.own_text(sf.code)
        via = " -> ".join(_short_fn(q) for q in path)
        for call in fn.calls:
            reason = None
            if call.name in SA4_BLOCKING_CALLS:
                reason = SA4_BLOCKING_CALLS[call.name]
            elif call.name in SA4_WAIT_METHODS and call.chain:
                recv = ".".join(call.chain)
                t = self.project.type_of_expr(recv, fn, sf)
                if t is not None and re.search(
                        r"\bCondVar\b|\bcondition_variable\b", t):
                    reason = "condition-variable wait"
                elif t is None:
                    reason = ("wait on an unresolvable receiver (assumed "
                              "blocking; annotate if not)")
            elif call.name == "run" and call.chain:
                recv = ".".join(call.chain)
                t = self.project.type_of_expr(recv, fn, sf)
                if t is not None and "ThreadPool" in t:
                    reason = ("ThreadPool::run joins a compute region (a "
                              "barrier over worker threads)")
            if reason is not None:
                self._emit(sf, call.line, "SA4",
                           f"blocking call '{call.name}' reachable from the "
                           f"event-loop thread ({reason}); path: {via}")
        for m in SA4_STREAM_RE.finditer(own):
            pos = fn.start + m.start()
            self._emit(sf, line_of(sf.code, pos), "SA4",
                       f"file stream on the event-loop thread (synchronous "
                       f"disk I/O); path: {via}")
        for ev in fn.locks:
            if ev.kind == "unlock":
                continue
            ident = self.project.lock_identity(ev.mutex_expr, fn, sf)
            if ident is None:
                continue
            if any(ident == a or ident.endswith("::" + a) or
                   _suffix2(ident) == a for a in SA4_MUTEX_ALLOWLIST):
                continue
            self._emit(sf, ev.line, "SA4",
                       f"mutex '{_short(ident)}' acquired on the event-loop "
                       f"thread but not on the audited bounded-hold "
                       f"allowlist (SA4_MUTEX_ALLOWLIST); path: {via}")


def _suffix2(ident: str) -> str:
    parts = ident.split("::")
    return "::".join(parts[-2:])


def _short(ident: str | None) -> str:
    if ident is None:
        return "<unresolved>"
    return _suffix2(ident)


def _short_fn(qname: str) -> str:
    if qname.startswith("<lambda"):
        return qname
    parts = qname.split("::")
    return "::".join(parts[-2:]) if len(parts) > 1 else qname


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles via DFS; each cycle reported once, rotated to its
    lexicographically-smallest node."""
    seen_cycles: set[tuple[str, ...]] = set()
    out: list[list[str]] = []

    def dfs(node: str, stack: list[str], on_stack: set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_stack:
                i = stack.index(nxt)
                cyc = stack[i:]
                k = cyc.index(min(cyc))
                canon = tuple(cyc[k:] + cyc[:k])
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    out.append(list(canon))
            elif nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
                on_stack.add(nxt)
                dfs(nxt, stack, on_stack)
                stack.pop()
                on_stack.remove(nxt)

    visited: set[str] = set()
    for node in sorted(graph):
        if node not in visited:
            visited.add(node)
            dfs(node, [node], {node})
    return out


# ----------------------------------------------------------------- backend --

def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


# ------------------------------------------------------------------ driver --

def discover_files(root: pathlib.Path,
                   compile_commands: pathlib.Path | None) -> list[
                       pathlib.Path]:
    files: set[pathlib.Path] = set()
    src = root / "src"
    if compile_commands is not None and compile_commands.exists():
        try:
            db = json.loads(compile_commands.read_text(encoding="utf-8"))
            for entry in db:
                f = pathlib.Path(entry.get("file", ""))
                if not f.is_absolute():
                    f = pathlib.Path(entry.get("directory", ".")) / f
                try:
                    f.resolve().relative_to(src.resolve())
                except ValueError:
                    continue
                if f.exists():
                    files.add(f.resolve())
        except (json.JSONDecodeError, OSError) as e:
            print(f"smpst_analyze: warning: unreadable compile_commands "
                  f"({e}); falling back to globbing src/", file=sys.stderr)
    # Headers (and any TU the build happens not to list) are always modelled.
    files |= {p.resolve() for p in src.rglob("*.hpp")}
    files |= {p.resolve() for p in src.rglob("*.cpp")}
    return sorted(files)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files to analyze (default: all of src/)")
    ap.add_argument("--root", default=".", help="project root (default: cwd)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--only", default=None,
                    help="comma-separated checks to run, e.g. SA1,SA3")
    ap.add_argument("--scope", choices=["auto", "fixture"], default="auto",
                    help="fixture: treat the given files as in-scope for "
                         "every check (fixture tests)")
    ap.add_argument("--backend", choices=["builtin", "libclang"],
                    default="builtin",
                    help="libclang: use clang.cindex when importable "
                         "(falls back to builtin with a note)")
    ap.add_argument("--sa4-entry", default=None,
                    help="override the SA4 entry-point suffix "
                         "(default: TcpServer::run)")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root)
    if args.backend == "libclang" and not libclang_available():
        print("smpst_analyze: note: clang.cindex not importable; using the "
              "builtin semantic engine", file=sys.stderr)

    if args.paths:
        files = [pathlib.Path(p) for p in args.paths]
    else:
        cc = pathlib.Path(args.compile_commands) if args.compile_commands \
            else (root / "build" / "compile_commands.json")
        files = discover_files(root, cc)
        if not (cc.exists()):
            print(f"smpst_analyze: note: {cc} not found (run cmake to "
                  f"export it); analyzed src/ by glob", file=sys.stderr)

    analyzer = Analyzer(root, files, fixture_mode=(args.scope == "fixture"))
    only = {c.strip().upper() for c in args.only.split(",")} \
        if args.only else {"SA1", "SA2", "SA3", "SA4"}
    if "SA1" in only:
        analyzer.check_sa1()
    if "SA2" in only:
        analyzer.check_sa2()
    if "SA3" in only:
        analyzer.check_sa3()
    if "SA4" in only:
        entries = (args.sa4_entry,) if args.sa4_entry else SA4_ENTRIES
        analyzer.check_sa4(entries)

    analyzer.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in analyzer.findings:
        print(f.render())
    if analyzer.findings:
        print(f"smpst_analyze: {len(analyzer.findings)} finding(s) in "
              f"{len(analyzer.sources)} file(s)", file=sys.stderr)
        return 1
    print(f"smpst_analyze: clean ({len(analyzer.sources)} files)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
