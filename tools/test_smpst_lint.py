#!/usr/bin/env python3
"""Fixture tests for tools/smpst_lint.py.

Runs the linter over each file in tests/lint_fixtures/ with --scope core
(so core/sched rules apply regardless of the fixture's path) and asserts the
exact multiset of rule IDs fired per fixture.  Proves every invariant the
linter claims to enforce actually fires, and that the known-good fixtures
stay silent.

Exit status 0 on success, 1 with a diff on any mismatch.
"""

from __future__ import annotations

import collections
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
LINTER = ROOT / "tools" / "smpst_lint.py"
FIXTURES = ROOT / "tests" / "lint_fixtures"

# fixture file -> expected multiset of rule IDs.
EXPECTED: dict[str, collections.Counter] = {
    "good_clean.cpp": collections.Counter(),
    "thread_owner_pool.cpp": collections.Counter(),
    "bad_implicit_seqcst.cpp": collections.Counter({"SL001": 5}),
    "bad_failpoint_under_lock.cpp": collections.Counter({"SL002": 2}),
    "bad_ctad_guard.cpp": collections.Counter({"SL002": 2}),
    "bad_scoped_capability.cpp": collections.Counter({"SL002": 1}),
    "bad_barrier_window.cpp": collections.Counter({"SL003": 1}),
    "bad_raw_mutex.cpp": collections.Counter({"SL004": 5}),
    "bad_include.hpp": collections.Counter({"SL005": 3}),
}

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>SL\d+)\]")


def run_linter(fixture: pathlib.Path) -> collections.Counter:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(ROOT), "--scope", "core",
         str(fixture)],
        capture_output=True, text=True, check=False)
    got: collections.Counter = collections.Counter()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            got[m.group("rule")] += 1
    clean = not got
    if clean and proc.returncode != 0:
        raise AssertionError(
            f"{fixture.name}: linter exited {proc.returncode} with no "
            f"findings\nstderr: {proc.stderr}")
    if not clean and proc.returncode == 0:
        raise AssertionError(
            f"{fixture.name}: linter found issues but exited 0")
    return got


def main() -> int:
    failures = []
    listed = {f.name for f in FIXTURES.iterdir() if f.suffix in
              (".cpp", ".hpp")}
    missing = listed - EXPECTED.keys()
    if missing:
        failures.append(f"fixtures without expectations: {sorted(missing)}")
    for name, want in sorted(EXPECTED.items()):
        fixture = FIXTURES / name
        if not fixture.exists():
            failures.append(f"{name}: fixture file missing")
            continue
        got = run_linter(fixture)
        if got != want:
            failures.append(
                f"{name}: expected {dict(want) or 'clean'}, "
                f"got {dict(got) or 'clean'}")
        else:
            label = (f"{sum(want.values())} finding(s)" if want else "clean")
            print(f"  ok   {name}: {label}")

    # The real tree must be clean — a finding in src/ is a regression.
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(ROOT)],
        cwd=ROOT, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        failures.append(f"src/ tree is not lint-clean:\n{proc.stdout}")
    else:
        print("  ok   src/ tree clean")

    if failures:
        print("\ntest_smpst_lint FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"test_smpst_lint: all {len(EXPECTED)} fixtures + tree scan passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
