#!/usr/bin/env python3
"""smpst_lint: repo-invariant linter for the spanning-tree codebase.

Enforces concurrency contracts that generic tools (clang-tidy, TSan) do not
express:

  SL001 implicit-memory-order
      Every operation on a std::atomic / std::atomic_ref / std::atomic_flag
      variable declared in src/core, src/sched or src/obs must name an
      explicit
      std::memory_order.  Defaulted seq_cst hides the author's intent and
      makes the memory-order audit unreviewable.  Compound operators
      (++, --, +=, =, ...) on atomics are implicit seq_cst and are flagged
      too.

  SL002 failpoint-under-lock
      SMPST_FAILPOINT / SMPST_FAILPOINT_TRIGGERED must not execute while a
      scoped lock guard (LockGuard, std::lock_guard, std::unique_lock,
      std::scoped_lock) is held.  A failpoint may throw or sleep; doing so
      under a lock turns an injected fault into a lock-hold-time bug that
      no production code path has.

  SL003 failpoint-in-barrier-window
      SMPST_FAILPOINT must not appear between a split-phase barrier
      `.arrive(` and the matching `.wait(` on the same object.  A throw in
      that window strands the other parties at the barrier forever.

  SL004 raw-concurrency-primitive
      src/core, src/sched and src/obs must not use raw std::mutex,
      std::recursive_mutex, std::timed_mutex, std::shared_mutex,
      std::lock_guard, std::unique_lock, std::scoped_lock,
      std::condition_variable(_any), std::thread or std::jthread.  The
      annotated wrappers in support/thread_annotations.hpp (smpst::Mutex,
      LockGuard, CondVar) carry Clang thread-safety attributes; raw
      primitives silently opt out of -Wthread-safety.
      Designated-owner exception: sched/thread_pool.* is the one
      translation unit allowed to own std::thread directly — every other
      file must go through ThreadPool.

  SL005 include-hygiene
      First-party includes must be quoted, project-root-relative (no "../"
      or "./" prefixes), headers under src/ must carry #pragma once, and
      nobody includes <bits/...> internals.

Usage:
  tools/smpst_lint.py [--root DIR] [paths...]
  tools/smpst_lint.py --scope core file1.cpp ...   # force core/sched rules
                                                   # (used by fixture tests)

With no paths, lints every .hpp/.cpp under src/.  Exit status is 1 when any
finding is reported, 0 when clean.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

ATOMIC_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "compare_exchange_weak|compare_exchange_strong|test_and_set|test|clear|"
    "wait"
)

# Declarations that introduce an atomic variable we then track by name.
ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic(?:_ref)?\s*<[^<>;]*(?:<[^<>;]*>[^<>;]*)?>\s*"
    r"(?P<ptr>\*\s*)?(?P<name>\w+)"
)
ATOMIC_FLAG_DECL_RE = re.compile(r"std\s*::\s*atomic_flag\s+(?P<name>\w+)")

FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(")

# Guard declarations, with or without explicit template arguments — CTAD
# (`LockGuard lk(m);`) acquires exactly like `LockGuard<Mutex> lk(m);`.
LOCK_GUARD_RE = re.compile(
    r"\b(?:smpst\s*::\s*)?(?:LockGuard|"
    r"std\s*::\s*lock_guard|"
    r"std\s*::\s*unique_lock|"
    r"std\s*::\s*scoped_lock)\s*(?:<[^>]*>)?\s+\w+\s*[({]"
)

# User-defined scoped-capability RAII classes (declared with
# SMPST_SCOPED_CAPABILITY) acquire in their constructor just like LockGuard;
# their names are collected across the linted set so SL002/SL003 treat a
# `WatchGuard g(x);` declaration as an acquisition.
SCOPED_CAPABILITY_DECL_RE = re.compile(
    r"\b(?:class|struct)\s+SMPST_SCOPED_CAPABILITY\s+(?P<name>\w+)")

FAILPOINT_RE = re.compile(r"\bSMPST_FAILPOINT(?:_TRIGGERED)?\s*\(")

BANNED_PRIMITIVES = [
    ("std::mutex", re.compile(r"\bstd\s*::\s*mutex\b")),
    ("std::recursive_mutex", re.compile(r"\bstd\s*::\s*recursive_mutex\b")),
    ("std::timed_mutex", re.compile(r"\bstd\s*::\s*timed_mutex\b")),
    ("std::shared_mutex", re.compile(r"\bstd\s*::\s*shared_mutex\b")),
    ("std::lock_guard", re.compile(r"\bstd\s*::\s*lock_guard\b")),
    ("std::unique_lock", re.compile(r"\bstd\s*::\s*unique_lock\b")),
    ("std::scoped_lock", re.compile(r"\bstd\s*::\s*scoped_lock\b")),
    ("std::condition_variable",
     re.compile(r"\bstd\s*::\s*condition_variable(?:_any)?\b")),
    ("std::thread", re.compile(r"\bstd\s*::\s*(?:j)?thread\b")),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"(?P<quoted>[^"]+)"|'
                        r"<(?P<angled>[^>]+)>)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def extract_call_args(text: str, open_paren: int) -> str | None:
    """Return the text between the paren at `open_paren` and its match."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return None


# ---------------------------------------------------------------- SL001 ----

def check_memory_order(path: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    names = {m.group("name") for m in ATOMIC_DECL_RE.finditer(text)}
    names |= {m.group("name") for m in ATOMIC_FLAG_DECL_RE.finditer(text)}
    if names:
        alt = "|".join(sorted(re.escape(n) for n in names))
        call_re = re.compile(
            rf"\b(?:this\s*->\s*)?(?P<var>{alt})\s*"
            rf"(?:\[[^\]]*\]\s*)?(?:\.|->)\s*"
            rf"(?P<method>{ATOMIC_METHODS})\s*\(")
        for m in call_re.finditer(text):
            args = extract_call_args(text, m.end() - 1)
            if args is None or "memory_order" not in args:
                findings.append(Finding(
                    path, line_of(text, m.start()), "SL001",
                    f"atomic op '{m.group('var')}.{m.group('method')}' "
                    f"defaults to seq_cst; name the memory_order explicitly"))
        # Compound / assignment operators on atomics are implicit seq_cst.
        op_re = re.compile(
            rf"\b(?:this\s*->\s*)?(?P<var>{alt})\s*"
            rf"(?P<op>\+\+|--|(?:[-+|&^])?=(?!=))")
        for m in op_re.finditer(text):
            # `name =` inside its own declaration (e.g. `atomic<int> x = ...`
            # or brace-init) is construction, not an atomic RMW; skip when the
            # declaration regex covers this position.
            decl_here = any(d.start("name") == m.start("var")
                            for d in ATOMIC_DECL_RE.finditer(text))
            if decl_here:
                continue
            findings.append(Finding(
                path, line_of(text, m.start()), "SL001",
                f"operator '{m.group('op')}' on atomic "
                f"'{m.group('var')}' is implicit seq_cst; use an explicit "
                f"fetch_/store/load with a named memory_order"))
    for m in FENCE_RE.finditer(text):
        args = extract_call_args(text, m.end() - 1)
        if args is None or "memory_order" not in args:
            findings.append(Finding(
                path, line_of(text, m.start()), "SL001",
                "atomic_thread_fence without an explicit memory_order"))
    return findings


# --------------------------------------------------------- SL002 / SL003 ----

def check_failpoint_placement(path: str, text: str,
                              extra_guards: frozenset[str] = frozenset()
                              ) -> list[Finding]:
    findings: list[Finding] = []
    events: list[tuple[int, str, re.Match]] = []
    guard_starts: set[int] = set()
    for m in LOCK_GUARD_RE.finditer(text):
        events.append((m.start(), "guard", m))
        guard_starts.add(m.start())
    if extra_guards:
        alt = "|".join(sorted(re.escape(g) for g in extra_guards))
        cap_re = re.compile(rf"\b(?:{alt})\s+\w+\s*[({{]")
        for m in cap_re.finditer(text):
            # Skip the class definition itself (`class ... Name {`) and any
            # position the base regex already claimed.
            head = text[max(0, m.start() - 64):m.start()]
            if re.search(r"\b(?:class|struct)\s+\w*\s*$", head):
                continue
            if m.start() not in guard_starts:
                events.append((m.start(), "guard", m))
    for m in FAILPOINT_RE.finditer(text):
        events.append((m.start(), "failpoint", m))
    arrive_re = re.compile(r"\b(?P<obj>\w+)\s*(?:\.|->)\s*arrive\s*\(")
    wait_re = re.compile(r"\b(?P<obj>\w+)\s*(?:\.|->)\s*wait\s*\(")
    for m in arrive_re.finditer(text):
        events.append((m.start(), "arrive", m))
    for m in wait_re.finditer(text):
        events.append((m.start(), "wait", m))
    events.sort(key=lambda e: e[0])
    ei = 0

    guard_depths: list[int] = []   # brace depth at each active guard's scope
    arrived: dict[str, int] = {}   # barrier object -> brace depth at arrive
    depth = 0
    for i, c in enumerate(text):
        while ei < len(events) and events[ei][0] == i:
            _, kind, m = events[ei]
            ei += 1
            if kind == "guard":
                guard_depths.append(depth)
            elif kind == "arrive":
                arrived[m.group("obj")] = depth
            elif kind == "wait":
                arrived.pop(m.group("obj"), None)
            elif kind == "failpoint":
                if guard_depths:
                    findings.append(Finding(
                        path, line_of(text, i), "SL002",
                        "failpoint executes while a scoped lock guard is "
                        "held; move it outside the guarded region"))
                if arrived:
                    objs = ", ".join(sorted(arrived))
                    findings.append(Finding(
                        path, line_of(text, i), "SL003",
                        f"failpoint between barrier arrive and wait "
                        f"(object: {objs}); a throw here strands the other "
                        f"parties"))
        if c == "{":
            depth += 1
        elif c == "}":
            # A guard/window recorded at depth d stays alive until its
            # *enclosing* scope closes (depth drops below d).  `depth <= d`
            # would wrongly release it when a sibling nested block — or the
            # guard's own brace-initializer `LockGuard lk{m};` — closes.
            depth -= 1
            while guard_depths and depth < guard_depths[-1]:
                guard_depths.pop()
            for obj in [o for o, d in arrived.items() if depth < d]:
                del arrived[obj]
    return findings


# ---------------------------------------------------------------- SL004 ----

def check_raw_primitives(path: str, text: str,
                         thread_owner: bool) -> list[Finding]:
    findings: list[Finding] = []
    for label, pattern in BANNED_PRIMITIVES:
        if label == "std::thread" and thread_owner:
            continue
        for m in pattern.finditer(text):
            findings.append(Finding(
                path, line_of(text, m.start()), "SL004",
                f"raw {label} in core/sched; use the annotated wrappers in "
                f"support/thread_annotations.hpp"
                + (" (only sched/thread_pool.* may own std::thread)"
                   if label == "std::thread" else "")))
    return findings


# ---------------------------------------------------------------- SL005 ----

def check_include_hygiene(path: str, raw_text: str, stripped_text: str,
                          is_src_header: bool) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(raw_text.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        quoted, angled = m.group("quoted"), m.group("angled")
        if quoted is not None and (quoted.startswith("../")
                                   or quoted.startswith("./")):
            findings.append(Finding(
                path, lineno, "SL005",
                f'relative include "{quoted}"; use a project-root-relative '
                f"path"))
        if angled is not None and angled.startswith("bits/"):
            findings.append(Finding(
                path, lineno, "SL005",
                f"<{angled}> is a libstdc++ internal header"))
    if is_src_header and "#pragma once" not in stripped_text:
        findings.append(Finding(path, 1, "SL005",
                                "header under src/ lacks #pragma once"))
    return findings


# ----------------------------------------------------------------- driver ----

def classify(root: pathlib.Path, path: pathlib.Path,
             forced_scope: str | None) -> tuple[bool, bool, bool]:
    """Return (core_or_sched, thread_owner, is_src_header)."""
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    core_or_sched = ("src/core/" in f"/{rel}" or "src/sched/" in f"/{rel}"
                     or "src/obs/" in f"/{rel}" or "src/storage/" in f"/{rel}")
    if forced_scope in ("core", "sched"):
        core_or_sched = True
    thread_owner = bool(re.search(r"sched/thread_pool\.(hpp|cpp)$", rel))
    if forced_scope and path.name.startswith("thread_owner"):
        thread_owner = True
    is_src_header = rel.startswith("src/") and rel.endswith(".hpp")
    if forced_scope:
        is_src_header = path.suffix == ".hpp"
    return core_or_sched, thread_owner, is_src_header


def lint_file(root: pathlib.Path, path: pathlib.Path,
              forced_scope: str | None,
              extra_guards: frozenset[str] = frozenset()) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments_and_strings(raw)
    rel = str(path)
    core_or_sched, thread_owner, is_src_header = classify(
        root, path, forced_scope)
    findings: list[Finding] = []
    if core_or_sched:
        findings += check_memory_order(rel, text)
        findings += check_raw_primitives(rel, text, thread_owner)
    findings += check_failpoint_placement(rel, text, extra_guards)
    findings += check_include_hygiene(rel, raw, text, is_src_header)
    return findings


def collect_scoped_capabilities(targets: list[pathlib.Path]) -> frozenset[
        str]:
    """Names of SMPST_SCOPED_CAPABILITY RAII classes across the linted set
    (acquisitions by such a class's constructor count as guards)."""
    names: set[str] = set()
    for t in targets:
        try:
            text = strip_comments_and_strings(
                t.read_text(encoding="utf-8", errors="replace"))
        except OSError:
            continue
        for m in SCOPED_CAPABILITY_DECL_RE.finditer(text):
            names.add(m.group("name"))
    # LockGuard's own declaration is SMPST_SCOPED_CAPABILITY; the base
    # regex already handles it (including CTAD).
    names.discard("LockGuard")
    return frozenset(names)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or dirs to lint "
                    "(default: <root>/src)")
    ap.add_argument("--root", default=".", help="project root "
                    "(default: cwd)")
    ap.add_argument("--scope", choices=["core", "sched", "auto"],
                    default="auto",
                    help="force core/sched rule scope on the given files "
                    "(fixture tests)")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root)
    targets: list[pathlib.Path] = []
    if args.paths:
        for p in args.paths:
            pp = pathlib.Path(p)
            if pp.is_dir():
                targets += sorted(pp.rglob("*.hpp")) + sorted(
                    pp.rglob("*.cpp"))
            else:
                targets.append(pp)
    else:
        src = root / "src"
        targets = sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp"))

    forced = args.scope if args.scope != "auto" else None
    extra_guards = collect_scoped_capabilities(targets)
    findings: list[Finding] = []
    for t in targets:
        findings += lint_file(root, t, forced, extra_guards)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    if findings:
        print(f"smpst_lint: {len(findings)} finding(s) in "
              f"{len(targets)} file(s)", file=sys.stderr)
        return 1
    print(f"smpst_lint: clean ({len(targets)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
